"""Command-line interface: regenerate the paper's artifacts from a shell.

::

    python -m repro table1                # Table I, paper-exact
    python -m repro fig7 [--paper-scale]  # path-computation sweep
    python -m repro cost-model            # equations (1)-(5) sweep
    python -m repro migrate-demo          # end-to-end migration walkthrough
    python -m repro check-fabric          # static verification matrix
    python -m repro chaos [--inject SPEC] # churn under injected faults
    python -m repro perf [--export F]     # telemetry sweep + dashboard export
    python -m repro top [--iterations N]  # hottest-links view
    python -m repro trace RUN             # replay a recorded run
    python -m repro metrics CMD [ARGS]    # run CMD, print the exposition

Every run command accepts ``--record DIR`` to persist the observability
timeline (``trace.jsonl``) and the metrics exposition (``metrics.prom`` +
``metrics.json``) for later replay with ``repro trace DIR``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser"]

#: Commands that execute a run (and therefore support ``--record``), as
#: opposed to ``trace``/``metrics`` which inspect one.
RUN_COMMANDS = (
    "table1",
    "fig7",
    "cost-model",
    "report",
    "migrate-demo",
    "check-fabric",
    "chaos",
    "serve",
    "perf",
    "top",
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Towards the InfiniBand SR-IOV vSwitch"
            " Architecture' (CLUSTER 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_record(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--record",
            metavar="DIR",
            default=None,
            help=(
                "write the run's observability timeline and metrics"
                " exposition into DIR (replay with 'repro trace DIR')"
            ),
        )

    add_record(sub.add_parser("table1", help="print the regenerated Table I"))

    fig7 = sub.add_parser("fig7", help="run the Fig. 7 path-computation sweep")
    fig7.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the true 324/648/5832/11664-node instances (slow)",
    )
    fig7.add_argument(
        "--engines",
        default="ftree,minhop,dfsssp,lash",
        help="comma-separated engine list",
    )
    fig7.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard all-pairs path computation over N processes"
            " (-1 = cpu count; results are byte-identical to serial)"
        ),
    )
    fig7.add_argument(
        "--budget",
        type=float,
        default=None,
        help=(
            "wall-clock budget in seconds; rows projected to exceed it are"
            " skipped with a message (default: REPRO_FIG7_BUDGET or 1800)"
        ),
    )
    add_record(fig7)

    add_record(sub.add_parser("cost-model", help="sweep equations (1)-(5)"))

    report = sub.add_parser(
        "report", help="regenerate every artifact into one markdown report"
    )
    report.add_argument("--paper-scale", action="store_true")
    report.add_argument("--output", default=None, help="write to a file")
    add_record(report)

    demo = sub.add_parser("migrate-demo", help="boot a cloud, migrate a VM")
    demo.add_argument(
        "--scheme",
        choices=["prepopulated", "dynamic"],
        default="prepopulated",
    )
    demo.add_argument("--profile", default="2l-small")
    add_record(demo)

    check = sub.add_parser(
        "check-fabric",
        help=(
            "statically prove loop/deadlock-freedom and reachability for"
            " the shipped preset x engine matrix"
        ),
    )
    check.add_argument(
        "--preset", default=None, help="check only this preset (default: all)"
    )
    check.add_argument(
        "--engine", default=None, help="check only this engine (default: all)"
    )
    check.add_argument(
        "--paper-scale",
        action="store_true",
        help="also check the paper's 324/648-node Table I instances",
    )
    check.add_argument(
        "--inject-fault",
        action="store_true",
        help=(
            "corrupt one LFT entry into a forwarding loop after bring-up"
            " to demonstrate failure reporting (exits non-zero)"
        ),
    )
    check.add_argument(
        "--corrupt-vl",
        action="store_true",
        help=(
            "corrupt one virtual-lane assignment after bring-up; the"
            " per-VL rules (VLC001/VLC002) must fire (exits non-zero;"
            " VL engines only)"
        ),
    )
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard all-pairs path computation over N processes",
    )
    check.add_argument(
        "--max-findings",
        type=int,
        default=10,
        metavar="N",
        help="show at most N findings per failing cell (default 10)",
    )
    add_record(check)

    chaos = sub.add_parser(
        "chaos",
        help=(
            "run a churn+migration workload under a fault plan and audit"
            " the final forwarding state (non-zero exit on divergence)"
        ),
    )
    chaos.add_argument(
        "--inject",
        default="",
        metavar="SPEC",
        help=(
            "fault plan, e.g. 'smp-drop=0.1,smp-corrupt=0.01,"
            "link-flap=0.05,switch-fail=0.02,sm-death=10'; HA scenarios"
            " add 'partition=N' (cut the master off the management plane"
            " at step N), 'heal-after=K' (heal K steps later; the stale"
            " master must be fenced+demoted), 'flap-storm=N' and"
            " 'storm-size=K' (K down/up cycles of one link at step N,"
            " absorbed by the trap queue); 'rewire=N' spreads N live"
            " topology mutations (add/remove/restore links and switches)"
            " over the run, each converged incrementally and audited"
        ),
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--steps", type=int, default=40, help="chaos steps (default 40)"
    )
    chaos.add_argument("--profile", default="2l-small")
    chaos.add_argument(
        "--scheme",
        choices=["prepopulated", "dynamic"],
        default="prepopulated",
    )
    chaos.add_argument(
        "--retries",
        type=int,
        default=8,
        help="MAD retries per SMP (default 8)",
    )
    chaos.add_argument(
        "--migrate-probability",
        type=float,
        default=0.25,
        help="per-step live-migration probability (default 0.25)",
    )
    chaos.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "run with fabric telemetry: measured traffic bursts between"
            " steps, PerfManager counter sweeps through the (faulty) MAD"
            " plane, observable flap windows, and telemetry rows in the"
            " report"
        ),
    )
    add_record(chaos)

    serve = sub.add_parser(
        "serve",
        help=(
            "drive the multi-tenant control-plane service (journaled"
            " boots/stops/migrations with admission control) through a"
            " chaos scenario and audit the end state (non-zero exit on"
            " any silent drop, orphaned VF, leaked LID or forwarding"
            " divergence)"
        ),
    )
    serve.add_argument(
        "--chaos",
        default="",
        metavar="SPEC",
        help=(
            "fault plan for the run: 'kill-service[=N]' kills the"
            " service worker at step N (default: mid-run) and"
            " warm-recovers it from the intent journal;"
            " 'tenant-storm=N,storm-factor=K' bursts K x the usual load"
            " at step N (admission control must shed with retry-after);"
            " SMP keys like 'smp-drop=0.1' compose"
        ),
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--steps", type=int, default=24, help="service steps (default 24)"
    )
    serve.add_argument("--profile", default="2l-small")
    serve.add_argument(
        "--scheme",
        choices=["prepopulated", "dynamic"],
        default="dynamic",
    )
    serve.add_argument(
        "--tenants", type=int, default=3, help="tenant count (default 3)"
    )
    serve.add_argument(
        "--requests-per-step",
        type=int,
        default=2,
        help="requests each tenant submits per step (default 2)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="requests coalesced into one SM sweep (default 8)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        help="bounded admission queue depth (default 64)",
    )
    serve.add_argument(
        "--max-vms",
        type=int,
        default=8,
        help="per-tenant VM quota (default 8)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=8,
        help="MAD retries per SMP (default 8)",
    )
    serve.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="persist the intent journal as JSONL to FILE",
    )
    add_record(serve)

    def add_fabric_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profile", default="2l-small")
        p.add_argument(
            "--scheme",
            choices=["prepopulated", "dynamic"],
            default="prepopulated",
        )
        p.add_argument(
            "--hosts",
            type=int,
            default=12,
            metavar="N",
            help="burst endpoints: the first N HCAs (default 12)",
        )
        p.add_argument(
            "--credits",
            type=int,
            default=2,
            help="per-VL channel credits in the burst simulator (default 2)",
        )
        p.add_argument(
            "--top",
            type=int,
            default=5,
            metavar="K",
            help="show the K hottest egress ports (default 5)",
        )

    perf = sub.add_parser(
        "perf",
        help=(
            "run measured traffic bursts, sweep the PMA counters through"
            " MADs, and report utilization/congestion/traffic-matrix"
            " analytics (non-zero exit if the matrix is empty or fails"
            " its delivered-packet audit)"
        ),
    )
    add_fabric_args(perf)
    perf.add_argument(
        "--sweeps",
        type=int,
        default=3,
        metavar="N",
        help="burst+sweep rounds to run (default 3)",
    )
    perf.add_argument(
        "--vms",
        type=int,
        default=0,
        metavar="N",
        help=(
            "boot N VMs and burst between their LIDs instead of the"
            " physical hosts' (adds per-VM/per-tenant matrices)"
        ),
    )
    perf.add_argument(
        "--drop",
        type=float,
        default=0.0,
        metavar="RATE",
        help="drop sweep MADs at RATE (exercises the retry path)",
    )
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="write the JSON telemetry dashboard (matrix, top talkers,"
        " congestion findings, sweep costs) to FILE ('-' for stdout)",
    )
    add_record(perf)

    top = sub.add_parser(
        "top",
        help="hottest-links view: repeated burst+sweep frames sorted by"
        " transmit rate",
    )
    add_fabric_args(top)
    top.add_argument(
        "--iterations",
        type=int,
        default=1,
        metavar="N",
        help="frames to show (default 1)",
    )
    add_record(top)

    trace = sub.add_parser(
        "trace", help="replay a recorded run's span tree and SMP timeline"
    )
    trace.add_argument(
        "run", help="a --record directory or a trace.jsonl file"
    )
    trace.add_argument(
        "--smps",
        type=int,
        default=50,
        metavar="N",
        help="show at most N SMP events in the timeline (default 50)",
    )
    trace.add_argument(
        "--tree-only",
        action="store_true",
        help="print only the span tree, skip the merged timeline",
    )

    metrics = sub.add_parser(
        "metrics",
        help=(
            "run a built-in command, then print its Prometheus exposition"
            " (or print a previously recorded one)"
        ),
    )
    metrics.add_argument(
        "target",
        help="a built-in command to run, or a --record directory to print",
    )
    metrics.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the wrapped command",
    )
    return parser


def _cmd_table1() -> int:
    from repro.analysis.tables import render_table1
    from repro.core.cost_model import improvement_percent, paper_table1

    rows = paper_table1()
    print(render_table1(rows))
    print(
        "improvement (worst-case swap vs full RC): "
        + ", ".join(
            f"{r.nodes}n={improvement_percent(r.min_smps_full_reconfig, r.max_smps_swap):.2f}%"
            for r in rows
        )
    )
    return 0


def _cmd_fig7(
    paper_scale: bool,
    engines: str,
    workers: int = 1,
    budget: Optional[float] = None,
) -> int:
    from repro.analysis.experiments import run_fig7
    from repro.analysis.figures import render_fig7

    kwargs = {}
    if budget is not None:
        kwargs["budget_seconds"] = None if budget <= 0 else budget
    series = run_fig7(
        engines=tuple(e.strip() for e in engines.split(",") if e.strip()),
        paper_scale=paper_scale,
        workers=workers,
        **kwargs,
    )
    print(render_fig7(series))
    return 0


def _cmd_cost_model() -> int:
    from repro.analysis.tables import render_table
    from repro.core.cost_model import (
        PAPER_TABLE1_INPUTS,
        table1_row,
        traditional_rc_time,
        vswitch_rc_time,
    )

    k, r = 2.0e-6, 1.0e-6
    rows = []
    for nodes, switches in PAPER_TABLE1_INPUTS:
        row = table1_row(nodes, switches)
        full = traditional_rc_time(
            0.0, switches, row.min_lft_blocks_per_switch, k, r
        )
        worst = vswitch_rc_time(switches, 2, k)
        rows.append(
            (nodes, f"{full:.4f}s", f"{worst * 1e3:.3f}ms", f"{full / worst:,.0f}x")
        )
    print(
        render_table(
            ["nodes", "LFTD full (eq.2)", "vSwitch worst (eq.5)", "ratio"],
            rows,
        )
    )
    return 0


def _cmd_migrate_demo(scheme: str, profile: str) -> int:
    from repro.fabric.presets import scaled_fattree
    from repro.obs import get_hub, render_span_tree
    from repro.virt.cloud import CloudManager

    built = scaled_fattree(profile)
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    bring_up = cloud.bring_up_subnet()
    print(
        f"subnet up: {cloud.sm.lids_consumed} LIDs,"
        f" {bring_up.lft_smps} LFT SMPs,"
        f" PCt={bring_up.path_compute_seconds * 1e3:.1f}ms"
    )
    vm = cloud.boot_vm()
    src = vm.hypervisor_name
    dest = next(
        name
        for name, h in cloud.hypervisors.items()
        if name != src and h.has_capacity()
    )
    report = cloud.live_migrate(vm.name, dest)
    print(
        f"migrated {vm.name} {src} -> {dest}: mode={report.mode},"
        f" n'={report.switches_updated}, SMPs={report.reconfig.lft_smps},"
        f" PCt=0, LID kept={vm.lid == report.vm_lid}"
    )
    migration = get_hub().find_root("migration")
    if migration is not None:
        print()
        print("span tree:")
        print(render_span_tree([migration]))
        n_prime = report.switches_updated
        m_prime = report.reconfig.max_blocks_on_one_switch
        recorded = migration.total_lft_smp_count()
        print(
            f"cross-check: span tree LFT SMP events={recorded},"
            f" n'*m'={n_prime}*{m_prime}={n_prime * m_prime},"
            f" reconfig report={report.reconfig.lft_smps}"
        )
    return 0


def _cmd_check_fabric(
    preset: Optional[str],
    engine: Optional[str],
    *,
    paper_scale: bool,
    inject_fault: bool,
    corrupt_vl: bool = False,
    max_findings: int,
    workers: int = 1,
) -> int:
    from repro.analysis.static import VL_ENGINES, default_cases, run_case
    from repro.errors import StaticAnalysisError

    try:
        cases = default_cases(
            paper_scale=paper_scale, preset=preset, engine=engine
        )
    except StaticAnalysisError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if corrupt_vl:
        cases = [c for c in cases if c.engine in VL_ENGINES]
        if not cases:
            print(
                "--corrupt-vl needs a VL engine cell"
                f" ({'/'.join(VL_ENGINES)}); none selected",
                file=sys.stderr,
            )
            return 2
    failed = 0
    for case in cases:
        result = run_case(
            case,
            inject_fault=inject_fault,
            corrupt_vl=corrupt_vl,
            workers=workers,
        )
        cell = f"{case.preset:>10} x {case.engine:<7}"
        if result.injected is not None:
            print(f"{cell}  injected fault: {result.injected}")
        if result.ok:
            report = result.report
            print(
                f"{cell}  ok ({report.lids_analyzed} LIDs,"
                f" {report.switches_analyzed} switches,"
                f" {len(report.checks_run)} checks)"
            )
        else:
            failed += 1
            print(f"{cell}  FAILED")
            print(result.report.render(max_findings=max_findings))
    print()
    verdict = "all clean" if failed == 0 else f"{failed} cell(s) failed"
    print(f"check-fabric: {len(cases)} cells, {verdict}")
    return 0 if failed == 0 else 1


def _cmd_chaos(
    inject: str,
    *,
    seed: int,
    steps: int,
    profile: str,
    scheme: str,
    retries: int,
    migrate_probability: float,
    telemetry: bool = False,
) -> int:
    from repro.errors import FaultInjectionError, ReproError
    from repro.fabric.presets import scaled_fattree
    from repro.faults.plan import FaultPlan
    from repro.mad.reliable import RetryPolicy
    from repro.virt.cloud import CloudManager
    from repro.workloads.chaos import ChaosRunner

    try:
        plan = FaultPlan.from_spec(inject, seed=seed)
        policy = RetryPolicy(retries=retries)
    except FaultInjectionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        built = scaled_fattree(profile)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    print(
        f"chaos: profile={profile} scheme={scheme}"
        f" switches={cloud.topology.num_switches}"
        f" hypervisors={len(cloud.hypervisors)} [{plan.describe()}]"
    )
    runner = ChaosRunner(
        cloud,
        plan,
        retry_policy=policy,
        migrate_probability=migrate_probability,
        telemetry=telemetry,
    )
    report = runner.run(steps)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(
    chaos: str,
    *,
    seed: int,
    steps: int,
    profile: str,
    scheme: str,
    tenants: int,
    requests_per_step: int,
    batch_size: int,
    max_queue_depth: int,
    max_vms: int,
    retries: int,
    journal: Optional[str],
) -> int:
    from repro.errors import FaultInjectionError, ReproError
    from repro.fabric.presets import scaled_fattree
    from repro.faults.plan import FaultPlan
    from repro.mad.reliable import RetryPolicy
    from repro.service import IntentJournal, TenantQuota
    from repro.virt.cloud import CloudManager
    from repro.workloads.chaos import ServiceChaosRunner

    # Bare 'kill-service' (no =N) means "kill mid-run".
    spec = ",".join(
        f"kill-service={steps // 2}" if item.strip() == "kill-service" else item
        for item in chaos.split(",")
        if item.strip()
    )
    try:
        plan = FaultPlan.from_spec(spec, seed=seed)
        policy = RetryPolicy(retries=retries)
    except FaultInjectionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        built = scaled_fattree(profile)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    sink = IntentJournal(Path(journal)) if journal else None
    print(
        f"serve: profile={profile} scheme={scheme}"
        f" hypervisors={len(cloud.hypervisors)} tenants={tenants}"
        f" [{plan.describe() or 'no faults'}]"
    )
    runner = ServiceChaosRunner(
        cloud,
        plan,
        tenants=tenants,
        requests_per_step=requests_per_step,
        retry_policy=policy,
        journal=sink,
        batch_size=batch_size,
        max_queue_depth=max_queue_depth,
        default_quota=TenantQuota(max_vms=max_vms, max_vfs=max_vms),
        genesis={
            "profile": profile,
            "scheme": scheme,
            "engine": "minhop",
            "num_vfs": 4,
            "placement": "first-fit",
        },
    )
    report = runner.run(steps)
    print(report.render())
    if journal:
        print(f"intent journal -> {journal}")
    return 0 if report.ok else 1


def _build_harness(
    profile: str, scheme: str, *, hosts: int, credits: int, vms: int = 0
):
    """Bring up a cloud and a telemetry harness over it."""
    from repro.fabric.presets import scaled_fattree
    from repro.telemetry import TelemetryHarness
    from repro.virt.cloud import CloudManager

    built = scaled_fattree(profile)
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    harness = TelemetryHarness(
        cloud.sm, max_endpoints=hosts, channel_credits=credits
    )
    if vms:
        booted = [cloud.boot_vm() for _ in range(vms)]
        harness.set_endpoints(sorted(vm.lid for vm in booted))
    return cloud, harness


def _port_rate_row(rate) -> str:
    return (
        f"  {rate.node:>10}:{rate.port:<3}"
        f" {rate.xmit_bps / 1e6:>9.2f} MB/s"
        f" ({rate.utilization:>6.2%} util,"
        f" {rate.xmit_pps:>10.0f} pkt/s,"
        f" wait {rate.wait_fraction:.2%},"
        f" discards {rate.discard_rate:.0f}/s)"
    )


def _cmd_perf(
    *,
    profile: str,
    scheme: str,
    hosts: int,
    vms: int,
    credits: int,
    sweeps: int,
    top: int,
    drop: float,
    seed: int,
    export: Optional[str],
) -> int:
    import json

    from repro.errors import ReproError
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.telemetry import (
        CongestionDetector,
        lid_owner_map,
        lid_tenant_map,
        top_talkers,
    )

    try:
        cloud, harness = _build_harness(
            profile, scheme, hosts=hosts, credits=credits, vms=vms
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    sm = cloud.sm
    if drop:
        sm.enable_resilience()
        sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=seed, smp_drop_rate=drop))
        )
    detector = CongestionDetector()
    print(
        f"perf: profile={profile} scheme={scheme}"
        f" endpoints={len(harness.endpoints())}"
        f" credits={credits} rounds={sweeps}"
        + (f" mad-drop={drop}" if drop else "")
    )
    try:
        for round_no in range(1, sweeps + 1):
            stats = harness.burst()
            sweep = harness.sweep()
            detector.scan(harness.store)
            print(
                f"round {round_no}: {stats.injected} injected,"
                f" {stats.delivered} delivered,"
                f" {stats.dropped_timeout + stats.dropped_no_route} dropped;"
                f" sweep {sweep.smps} SMPs"
                f" ({sweep.retransmissions} retransmissions,"
                f" {len(sweep.missed)} missed),"
                f" {sweep.samples} samples"
            )
    finally:
        sm.transport.set_fault_injector(None)
    hottest = top_talkers(harness.store, top=top)
    print()
    print(f"top {len(hottest)} talkers:")
    for rate in hottest:
        print(_port_rate_row(rate))
    print(
        f"congestion: {len(detector.findings)} findings,"
        f" {detector.congestion_seconds * 1e3:.3f}ms attributed wait"
    )
    matrix = harness.matrix
    consistent = harness.verify_matrix()
    print(
        f"traffic matrix: {len(matrix.endpoints)} endpoints,"
        f" {matrix.total} delivered packets"
        f" (audit vs data plane:"
        f" {'consistent' if consistent else 'INCONSISTENT'})"
    )
    if export is not None:
        dashboard = {
            "profile": profile,
            "scheme": scheme,
            "rounds": sweeps,
            "endpoints": harness.endpoints(),
            "dataplane": {
                "injected": harness.injected,
                "delivered": harness.delivered,
                "dropped_timeout": harness.dropped_timeout,
                "dropped_no_route": harness.dropped_no_route,
            },
            "sweeps": {
                "count": harness.perf.sweeps,
                "smps": harness.perf.smps,
                "misses": harness.perf.misses,
            },
            "series": {
                "count": len(harness.store.keys()),
                "samples": harness.store.samples_total,
                "evictions": harness.store.evictions,
            },
            "top_talkers": [
                {
                    "node": r.node,
                    "port": r.port,
                    "xmit_bps": r.xmit_bps,
                    "rcv_bps": r.rcv_bps,
                    "utilization": r.utilization,
                    "wait_fraction": r.wait_fraction,
                    "discard_rate": r.discard_rate,
                }
                for r in hottest
            ],
            "congestion": [
                {
                    "time": f.time,
                    "node": f.node,
                    "port": f.port,
                    "wait_seconds": f.wait_seconds,
                    "discards": f.discards,
                    "utilization": f.utilization,
                }
                for f in detector.findings
            ],
            "traffic_matrix": matrix.to_json(),
        }
        if vms:
            dashboard["by_vm"] = {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(
                    matrix.aggregate(lid_owner_map(cloud)).items()
                )
            }
            dashboard["by_tenant"] = {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(
                    matrix.aggregate(lid_tenant_map(cloud)).items()
                )
            }
        text = json.dumps(dashboard, indent=2, sort_keys=True)
        if export == "-":
            print(text)
        else:
            Path(export).write_text(text + "\n", encoding="utf-8")
            print(f"dashboard written to {export}")
    if matrix.total == 0 or not consistent:
        print(
            "perf: FAILED (traffic matrix empty or inconsistent with the"
            " data plane)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_top(
    *,
    profile: str,
    scheme: str,
    hosts: int,
    credits: int,
    top: int,
    iterations: int,
) -> int:
    from repro.errors import ReproError
    from repro.telemetry import top_talkers

    try:
        _cloud, harness = _build_harness(
            profile, scheme, hosts=hosts, credits=credits
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for frame in range(1, iterations + 1):
        harness.burst()
        harness.sweep()
        hottest = top_talkers(harness.store, top=top)
        print(f"frame {frame} (t={harness.store.last_time * 1e3:.3f}ms):")
        for rate in hottest:
            print(_port_rate_row(rate))
    return 0


def _cmd_trace(run: str, *, max_smps: int, tree_only: bool) -> int:
    from repro.errors import ReproError
    from repro.obs import load_run, render_span_tree, render_timeline

    path = Path(run)
    if path.is_dir():
        path = path / "trace.jsonl"
    if not path.exists():
        print(f"no recorded run at {run!r} (expected a trace.jsonl)", file=sys.stderr)
        return 1
    try:
        loaded = load_run(path)
    except ReproError as exc:
        print(f"cannot replay {run!r}: {exc}", file=sys.stderr)
        return 1
    header = loaded.header
    print(
        f"run: {header.get('spans', len(loaded.roots))} spans,"
        f" {header.get('smp_events', len(loaded.smp_events))} SMP events,"
        f" sim time {float(header.get('sim_time', 0.0)) * 1e3:.3f}ms"
    )
    print()
    print("span tree:")
    print(render_span_tree(loaded.roots))
    if not tree_only:
        print()
        print("timeline:")
        print(
            render_timeline(
                loaded.roots, loaded.smp_events, max_smp_lines=max_smps
            )
        )
    return 0


def _cmd_metrics(target: str, rest: List[str]) -> int:
    from repro.obs import get_hub

    recorded = Path(target)
    if recorded.is_dir():
        recorded = recorded / "metrics.prom"
    if recorded.exists():
        print(recorded.read_text(encoding="utf-8"), end="")
        return 0
    if target not in RUN_COMMANDS:
        print(
            f"{target!r} is neither a recorded run nor one of"
            f" {', '.join(RUN_COMMANDS)}",
            file=sys.stderr,
        )
        return 1
    rc = main([target, *rest])
    print()
    print(get_hub().metrics.render_prometheus(), end="")
    return rc


def _write_record(record_dir: str) -> None:
    from repro.obs import export_run, get_hub

    hub = get_hub()
    out = Path(record_dir)
    out.mkdir(parents=True, exist_ok=True)
    export_run(hub, out / "trace.jsonl")
    (out / "metrics.prom").write_text(
        hub.metrics.render_prometheus(), encoding="utf-8"
    )
    (out / "metrics.json").write_text(
        hub.metrics.dump_json() + "\n", encoding="utf-8"
    )
    print(f"recorded run -> {out}")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        return _cmd_trace(args.run, max_smps=args.smps, tree_only=args.tree_only)
    if args.command == "metrics":
        return _cmd_metrics(args.target, args.rest)

    from repro.obs import reset_hub

    reset_hub()
    if args.command == "table1":
        rc = _cmd_table1()
    elif args.command == "fig7":
        rc = _cmd_fig7(
            args.paper_scale, args.engines, args.workers, args.budget
        )
    elif args.command == "cost-model":
        rc = _cmd_cost_model()
    elif args.command == "migrate-demo":
        rc = _cmd_migrate_demo(args.scheme, args.profile)
    elif args.command == "check-fabric":
        rc = _cmd_check_fabric(
            args.preset,
            args.engine,
            paper_scale=args.paper_scale,
            inject_fault=args.inject_fault,
            corrupt_vl=args.corrupt_vl,
            max_findings=args.max_findings,
            workers=args.workers,
        )
    elif args.command == "chaos":
        rc = _cmd_chaos(
            args.inject,
            seed=args.seed,
            steps=args.steps,
            profile=args.profile,
            scheme=args.scheme,
            retries=args.retries,
            migrate_probability=args.migrate_probability,
            telemetry=args.telemetry,
        )
    elif args.command == "serve":
        rc = _cmd_serve(
            args.chaos,
            seed=args.seed,
            steps=args.steps,
            profile=args.profile,
            scheme=args.scheme,
            tenants=args.tenants,
            requests_per_step=args.requests_per_step,
            batch_size=args.batch_size,
            max_queue_depth=args.max_queue_depth,
            max_vms=args.max_vms,
            retries=args.retries,
            journal=args.journal,
        )
    elif args.command == "perf":
        rc = _cmd_perf(
            profile=args.profile,
            scheme=args.scheme,
            hosts=args.hosts,
            vms=args.vms,
            credits=args.credits,
            sweeps=args.sweeps,
            top=args.top,
            drop=args.drop,
            seed=args.seed,
            export=args.export,
        )
    elif args.command == "top":
        rc = _cmd_top(
            profile=args.profile,
            scheme=args.scheme,
            hosts=args.hosts,
            credits=args.credits,
            top=args.top,
            iterations=args.iterations,
        )
    elif args.command == "report":
        from repro.analysis.report import generate_report

        text = generate_report(
            paper_scale=args.paper_scale, output=args.output
        )
        if args.output:
            print(f"report written to {args.output}")
        else:
            print(text)
        rc = 0
    else:  # pragma: no cover
        raise AssertionError(f"unhandled command {args.command}")
    if args.record:
        _write_record(args.record)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
