"""Command-line interface: regenerate the paper's artifacts from a shell.

::

    python -m repro table1                # Table I, paper-exact
    python -m repro fig7 [--paper-scale]  # path-computation sweep
    python -m repro cost-model            # equations (1)-(5) sweep
    python -m repro migrate-demo          # end-to-end migration walkthrough
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Towards the InfiniBand SR-IOV vSwitch"
            " Architecture' (CLUSTER 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the regenerated Table I")

    fig7 = sub.add_parser("fig7", help="run the Fig. 7 path-computation sweep")
    fig7.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the true 324/648/5832/11664-node instances (slow)",
    )
    fig7.add_argument(
        "--engines",
        default="ftree,minhop,dfsssp,lash",
        help="comma-separated engine list",
    )

    sub.add_parser("cost-model", help="sweep equations (1)-(5)")

    report = sub.add_parser(
        "report", help="regenerate every artifact into one markdown report"
    )
    report.add_argument("--paper-scale", action="store_true")
    report.add_argument("--output", default=None, help="write to a file")

    demo = sub.add_parser("migrate-demo", help="boot a cloud, migrate a VM")
    demo.add_argument(
        "--scheme",
        choices=["prepopulated", "dynamic"],
        default="prepopulated",
    )
    demo.add_argument("--profile", default="2l-small")
    return parser


def _cmd_table1() -> int:
    from repro.analysis.tables import render_table1
    from repro.core.cost_model import improvement_percent, paper_table1

    rows = paper_table1()
    print(render_table1(rows))
    print(
        "improvement (worst-case swap vs full RC): "
        + ", ".join(
            f"{r.nodes}n={improvement_percent(r.min_smps_full_reconfig, r.max_smps_swap):.2f}%"
            for r in rows
        )
    )
    return 0


def _cmd_fig7(paper_scale: bool, engines: str) -> int:
    from repro.analysis.experiments import run_fig7
    from repro.analysis.figures import render_fig7

    series = run_fig7(
        engines=tuple(e.strip() for e in engines.split(",") if e.strip()),
        paper_scale=paper_scale,
    )
    print(render_fig7(series))
    return 0


def _cmd_cost_model() -> int:
    from repro.analysis.tables import render_table
    from repro.core.cost_model import (
        PAPER_TABLE1_INPUTS,
        table1_row,
        traditional_rc_time,
        vswitch_rc_time,
    )

    k, r = 2.0e-6, 1.0e-6
    rows = []
    for nodes, switches in PAPER_TABLE1_INPUTS:
        row = table1_row(nodes, switches)
        full = traditional_rc_time(
            0.0, switches, row.min_lft_blocks_per_switch, k, r
        )
        worst = vswitch_rc_time(switches, 2, k)
        rows.append(
            (nodes, f"{full:.4f}s", f"{worst * 1e3:.3f}ms", f"{full / worst:,.0f}x")
        )
    print(
        render_table(
            ["nodes", "LFTD full (eq.2)", "vSwitch worst (eq.5)", "ratio"],
            rows,
        )
    )
    return 0


def _cmd_migrate_demo(scheme: str, profile: str) -> int:
    from repro.fabric.presets import scaled_fattree
    from repro.virt.cloud import CloudManager

    built = scaled_fattree(profile)
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    bring_up = cloud.bring_up_subnet()
    print(
        f"subnet up: {cloud.sm.lids_consumed} LIDs,"
        f" {bring_up.lft_smps} LFT SMPs,"
        f" PCt={bring_up.path_compute_seconds * 1e3:.1f}ms"
    )
    vm = cloud.boot_vm()
    src = vm.hypervisor_name
    dest = next(
        name
        for name, h in cloud.hypervisors.items()
        if name != src and h.has_capacity()
    )
    report = cloud.live_migrate(vm.name, dest)
    print(
        f"migrated {vm.name} {src} -> {dest}: mode={report.mode},"
        f" n'={report.switches_updated}, SMPs={report.reconfig.lft_smps},"
        f" PCt=0, LID kept={vm.lid == report.vm_lid}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "fig7":
        return _cmd_fig7(args.paper_scale, args.engines)
    if args.command == "cost-model":
        return _cmd_cost_model()
    if args.command == "migrate-demo":
        return _cmd_migrate_demo(args.scheme, args.profile)
    if args.command == "report":
        from repro.analysis.report import generate_report

        text = generate_report(
            paper_scale=args.paper_scale, output=args.output
        )
        if args.output:
            print(f"report written to {args.output}")
        else:
            print(text)
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
