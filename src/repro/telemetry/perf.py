"""The PerfManager: periodic PMA counter sweeps over the MAD transport.

Mirrors OpenSM's perfmgr: every sweep sends one ``SubnGet(PortCounters)``
MAD per node through the *costed* transport, so sweep traffic shows up in
:class:`~repro.mad.transport.TransportStats`, advances the sim clock,
competes with control traffic for the fault injector's attention, and is
retried by the :class:`~repro.mad.reliable.ReliableSmpSender` when the
subnet manager has resilience enabled (the manager uses ``sm.smp_sender``,
picking up whatever retry policy the SM runs with).

Wire reads are 32-bit and wrap (:data:`~repro.fabric.node.PMA_COUNTER_WRAP`);
the manager reconstructs monotonic totals by accumulating modular deltas
between consecutive sweeps, and stores them in a bounded
:class:`~repro.telemetry.store.TimeSeriesStore` keyed (node, port, counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError, SmpTimeoutError, UnreachableTargetError
from repro.fabric.node import PMA_COUNTER_WRAP, Node
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.obs.hub import get_hub, span
from repro.telemetry.store import SeriesKey, TimeSeriesStore

__all__ = ["SweepReport", "PerfManager"]

#: Default sweep period on the sim clock (100 us of fabric time).
DEFAULT_SWEEP_PERIOD = 100e-6


@dataclass
class SweepReport:
    """Outcome of one counter sweep."""

    index: int
    time: float
    nodes_swept: int = 0
    ports_seen: int = 0
    samples: int = 0
    #: MADs this sweep put on the wire (including retransmissions).
    smps: int = 0
    retransmissions: int = 0
    #: Nodes whose GET never answered (timeout after retries / unreachable).
    missed: List[str] = field(default_factory=list)


class PerfManager:
    """Sweeps PMA counters into a time-series store, MAD by MAD."""

    def __init__(
        self,
        sm,
        *,
        store: Optional[TimeSeriesStore] = None,
        period: float = DEFAULT_SWEEP_PERIOD,
        include_hcas: bool = True,
        sender=None,
    ) -> None:
        if period <= 0:
            raise ReproError("sweep period must be positive")
        self.sm = sm
        self.store = store if store is not None else TimeSeriesStore()
        self.period = period
        self.include_hcas = include_hcas
        self._sender = sender
        #: Last raw (wrapped) wire reading per series.
        self._raw: Dict[SeriesKey, int] = {}
        #: Reconstructed monotonic totals per series.
        self._totals: Dict[SeriesKey, int] = {}
        self.reports: List[SweepReport] = []
        self._last_sweep_time: Optional[float] = None

    @property
    def sender(self):
        """The MAD sender: an explicit override, else the SM's current one
        (the reliable sender once ``enable_resilience()`` has run)."""
        if self._sender is not None:
            return self._sender
        return getattr(self.sm, "smp_sender", self.sm.transport)

    def _targets(self) -> List[Node]:
        topo = self.sm.topology
        nodes: List[Node] = list(topo.switches)
        if self.include_hcas:
            nodes.extend(topo.hcas)
        return nodes

    # -- sweeping ------------------------------------------------------------

    def sweep(self) -> SweepReport:
        """One full sweep: GET PortCounters from every node, store deltas."""
        hub = get_hub()
        stats = self.sm.transport.stats
        smps_before = stats.total_smps
        rtx_before = stats.retransmissions
        report = SweepReport(index=len(self.reports) + 1, time=hub.now())
        with span("perf_sweep", index=report.index):
            for node in self._targets():
                data = self._get_counters(node, report)
                if data is None:
                    continue
                report.nodes_swept += 1
                now = hub.now()
                ports = data["ports"]
                for pnum in sorted(ports):
                    report.ports_seen += 1
                    for cname, raw in ports[pnum].items():
                        self._ingest(node.name, pnum, cname, now, raw)
                        report.samples += 1
        report.smps = stats.total_smps - smps_before
        report.retransmissions = stats.retransmissions - rtx_before
        self.reports.append(report)
        self._last_sweep_time = report.time
        metrics = hub.metrics
        metrics.counter("repro_telemetry_sweeps_total").add(1)
        metrics.counter("repro_telemetry_sweep_smps_total").add(report.smps)
        metrics.counter("repro_telemetry_sweep_misses_total").add(
            len(report.missed)
        )
        metrics.counter("repro_telemetry_samples_total").add(report.samples)
        metrics.gauge("repro_telemetry_series").set(len(self.store))
        return report

    def _get_counters(self, node: Node, report: SweepReport):
        """Send one PortCounters GET; None (and a miss) on any failure."""
        smp = Smp(SmpMethod.GET, SmpKind.PORT_COUNTERS, node.name)
        try:
            result = self.sender.send(smp)
        except (SmpTimeoutError, UnreachableTargetError):
            report.missed.append(node.name)
            return None
        if not result.ok or result.data is None:
            report.missed.append(node.name)
            return None
        return result.data

    def _ingest(
        self, node: str, port: int, counter: str, now: float, raw: int
    ) -> None:
        """Fold one wrapped wire reading into the monotonic series."""
        key = (node, port, counter)
        prev = self._raw.get(key)
        if prev is None:
            # First observation: the counter is assumed not to have
            # wrapped before the manager ever saw it.
            delta = raw
        else:
            delta = (raw - prev) % PMA_COUNTER_WRAP
        self._raw[key] = raw
        total = self._totals.get(key, 0) + delta
        self._totals[key] = total
        self.store.append(node, port, counter, now, total)

    def total(self, node: str, port: int, counter: str) -> int:
        """Reconstructed monotonic total for one series (0 if never swept)."""
        return self._totals.get((node, int(port), counter), 0)

    @property
    def sweeps(self) -> int:
        """Sweeps completed so far."""
        return len(self.reports)

    @property
    def smps(self) -> int:
        """MADs all sweeps ever put on the wire (retransmissions included)."""
        return sum(r.smps for r in self.reports)

    @property
    def misses(self) -> int:
        """Node GETs that never answered, across all sweeps."""
        return sum(len(r.missed) for r in self.reports)

    # -- scheduling ----------------------------------------------------------

    def maybe_sweep(self) -> Optional[SweepReport]:
        """Sweep iff at least one period elapsed on the hub's sim clock."""
        now = get_hub().now()
        if (
            self._last_sweep_time is not None
            and now - self._last_sweep_time < self.period
        ):
            return None
        return self.sweep()

    def attach(self, engine, *, until: float) -> int:
        """Schedule periodic sweeps on a simulation engine's clock.

        Registers one sweep per period up to *until* (relative to the
        engine's current time) and returns how many were scheduled — a
        bounded, deterministic alternative to self-rescheduling forever.
        """
        if until <= 0:
            raise ReproError("attach needs a positive horizon")
        count = int(until / self.period)
        for i in range(1, count + 1):
            engine.schedule(
                i * self.period, self.sweep, label=f"perf_sweep#{i}"
            )
        return count

    # -- counter management ---------------------------------------------------

    def reset_counters(self) -> int:
        """SET PortCounters(reset) on every target, through the costed path.

        Returns the number of nodes that acknowledged the reset. The raw
        wire baselines are cleared so the next sweep re-seeds them; a node
        whose reset MAD was lost re-reports its full history once (the
        monotonic total double-counts it — exactly the ambiguity a real
        perfmgr faces when a reset is unacknowledged).
        """
        acked = 0
        for node in self._targets():
            smp = Smp(
                SmpMethod.SET,
                SmpKind.PORT_COUNTERS,
                node.name,
                payload={"reset": True},
            )
            try:
                result = self.sender.send(smp)
            except (SmpTimeoutError, UnreachableTargetError):
                continue
            if result.ok:
                acked += 1
        self._raw.clear()
        return acked
