"""Telemetry harness: drive measured traffic bursts and counter sweeps.

Shared by ``repro perf``, ``repro top`` and the chaos runner's telemetry
mode: inject an all-to-all burst on the *current* hardware LFTs, sweep the
counters through the MAD plane, and accumulate the delivered flows into a
:class:`~repro.telemetry.analytics.TrafficMatrix`.

Every burst builds a **fresh** :class:`~repro.sim.dataplane.DataPlaneSimulator`
so topology mutations between bursts (a link that died, a reroute that
landed) are visible to the traffic — the property that makes flap windows
show up as discards on the dead link's ports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.hub import get_hub
from repro.sim.dataplane import DataPlaneSimulator, DataPlaneStats
from repro.telemetry.analytics import TrafficMatrix
from repro.telemetry.perf import PerfManager
from repro.workloads.traffic import all_to_all_flows

__all__ = ["TelemetryHarness"]


class TelemetryHarness:
    """Bursts + sweeps over one subnet, with an accumulated traffic matrix."""

    def __init__(
        self,
        sm,
        *,
        perf: Optional[PerfManager] = None,
        endpoints: Optional[Sequence[int]] = None,
        max_endpoints: int = 12,
        channel_credits: int = 2,
        hop_time: float = 1e-6,
        hoq_timeout: float = 1e-3,
        packet_bytes: int = 256,
        spacing: float = 1e-7,
    ) -> None:
        if max_endpoints < 2:
            raise ReproError("a burst needs at least two endpoints")
        self.sm = sm
        self.perf = perf if perf is not None else PerfManager(sm)
        self._endpoints = list(endpoints) if endpoints is not None else None
        self.max_endpoints = max_endpoints
        self.channel_credits = channel_credits
        self.hop_time = hop_time
        self.hoq_timeout = hoq_timeout
        self.packet_bytes = packet_bytes
        self.spacing = spacing
        self.matrix = TrafficMatrix()
        #: Per-burst outcome stats, burst order.
        self.bursts: List[DataPlaneStats] = []

    # -- endpoints -----------------------------------------------------------

    def endpoints(self) -> List[int]:
        """The burst endpoints: explicit list, else the first HCA LIDs."""
        if self._endpoints is not None:
            return list(self._endpoints)
        lids = sorted(
            h.lid for h in self.sm.topology.hcas if h.lid is not None
        )
        if len(lids) < 2:
            raise ReproError("fewer than two addressable endpoints")
        return lids[: self.max_endpoints]

    def set_endpoints(self, lids: Sequence[int]) -> None:
        """Pin the endpoint set (e.g. to VM LIDs)."""
        self._endpoints = list(lids)

    # -- driving -------------------------------------------------------------

    def burst(
        self, flows: Optional[List[Tuple[int, int]]] = None
    ) -> DataPlaneStats:
        """Run one burst on a fresh simulator; fold flows into the matrix."""
        sim = DataPlaneSimulator(
            self.sm.topology,
            channel_credits=self.channel_credits,
            hop_time=self.hop_time,
            hoq_timeout=self.hoq_timeout,
            packet_bytes=self.packet_bytes,
        )
        sim.inject_flows(
            flows if flows is not None else all_to_all_flows(self.endpoints()),
            spacing=self.spacing,
        )
        stats = sim.run()
        # The burst occupied fabric time: fold the data-plane clock into
        # the hub's sim clock so sweep timestamps (and windowed rates)
        # span the traffic interval, not just MAD latencies.
        get_hub().advance(sim.engine.now)
        self.bursts.append(stats)
        self.matrix.add(stats.flows)
        return stats

    def sweep(self):
        """One PerfManager sweep (costed MADs through the SM's sender)."""
        return self.perf.sweep()

    # -- accumulated outcomes -------------------------------------------------

    @property
    def store(self):
        """The PerfManager's time-series store."""
        return self.perf.store

    @property
    def injected(self) -> int:
        """Packets injected across all bursts."""
        return sum(b.injected for b in self.bursts)

    @property
    def delivered(self) -> int:
        """Packets delivered across all bursts (== ``matrix.total``)."""
        return sum(b.delivered for b in self.bursts)

    @property
    def dropped_timeout(self) -> int:
        """HOQ-lifetime drops across all bursts."""
        return sum(b.dropped_timeout for b in self.bursts)

    @property
    def dropped_no_route(self) -> int:
        """Unroutable drops across all bursts."""
        return sum(b.dropped_no_route for b in self.bursts)

    def verify_matrix(self) -> bool:
        """Row sums must reproduce the delivered-packet totals exactly."""
        return (
            self.matrix.total == self.delivered
            and sum(self.matrix.row_sum(lid) for lid in self.matrix.endpoints)
            == self.delivered
        )
