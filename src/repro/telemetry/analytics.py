"""Analytics over swept counters: utilization, hot spots, traffic matrices.

Everything here consumes the :class:`~repro.telemetry.store.TimeSeriesStore`
(i.e. only what the PerfManager actually measured through MADs) or the
data plane's delivered-flow counts — never the simulator's internals — so
the numbers carry the same partial, sweep-delayed view a real fabric
monitor has.

The traffic-matrix shape is what the ROADMAP's traffic-aware migration
planning consumes: per-endpoint (LID) delivered-packet counts, foldable
to per-VM or per-tenant matrices via an owner map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "LINK_BANDWIDTH_BYTES",
    "PortRate",
    "port_rates",
    "top_talkers",
    "CongestionFinding",
    "CongestionDetector",
    "TrafficMatrix",
    "lid_owner_map",
    "lid_tenant_map",
]

#: Effective data bandwidth of one link, bytes per second. FDR 4x — the
#: 56 Gb/s generation of the paper's testbed — moves ~54.5 Gb/s of data
#: after 64/66 encoding.
LINK_BANDWIDTH_BYTES = 6.8e9


@dataclass(frozen=True)
class PortRate:
    """Windowed rates of one port, derived from swept counters."""

    node: str
    port: int
    xmit_pps: float
    rcv_pps: float
    xmit_bps: float  # bytes / sim second
    rcv_bps: float
    #: Fraction of the window the head of queue spent credit-blocked
    #: (xmit-wait ticks are nanoseconds, so ticks/s / 1e9 is a fraction).
    wait_fraction: float
    discard_rate: float
    #: xmit_bps over the link bandwidth.
    utilization: float


def port_rates(
    store,
    *,
    window: Optional[float] = None,
    bandwidth: float = LINK_BANDWIDTH_BYTES,
) -> List[PortRate]:
    """Per-port rates over the trailing *window*, sorted by (node, port)."""
    if bandwidth <= 0:
        raise ReproError("link bandwidth must be positive")
    out: List[PortRate] = []
    for node, port in store.endpoints():
        xmit_bps = store.rate(node, port, "xmit_data", window=window)
        out.append(
            PortRate(
                node=node,
                port=port,
                xmit_pps=store.rate(node, port, "xmit_packets", window=window),
                rcv_pps=store.rate(node, port, "rcv_packets", window=window),
                xmit_bps=xmit_bps,
                rcv_bps=store.rate(node, port, "rcv_data", window=window),
                wait_fraction=(
                    store.rate(node, port, "xmit_wait", window=window) / 1e9
                ),
                discard_rate=store.rate(
                    node, port, "xmit_discards", window=window
                ),
                utilization=xmit_bps / bandwidth,
            )
        )
    return out


def top_talkers(
    store,
    *,
    top: int = 5,
    window: Optional[float] = None,
    bandwidth: float = LINK_BANDWIDTH_BYTES,
) -> List[PortRate]:
    """The *top* hottest egress ports by transmit byte rate."""
    if top < 1:
        raise ReproError("top must be >= 1")
    rates = port_rates(store, window=window, bandwidth=bandwidth)
    rates.sort(key=lambda r: (-r.xmit_bps, r.node, r.port))
    return rates[:top]


@dataclass(frozen=True)
class CongestionFinding:
    """One port flagged by the congestion detector."""

    time: float
    node: str
    port: int
    #: xmit-wait seconds accumulated since the previous scan.
    wait_seconds: float
    #: Discards accumulated since the previous scan.
    discards: int
    utilization: float


class CongestionDetector:
    """Flags ports whose swept counters crossed congestion thresholds.

    Detection is *delta-based*: a port is flagged when, since the last
    scan, its cumulative xmit-wait grew by at least ``wait_seconds_threshold``
    or its discards grew by at least ``discard_threshold`` — or when its
    windowed utilization reaches ``utilization_threshold``. Flagged ports
    raise a CONGESTION threshold event into the attached
    :class:`~repro.sm.traps.FabricEventManager` (when one is attached),
    and their wait growth accumulates into ``congestion_seconds``.
    """

    def __init__(
        self,
        events=None,
        *,
        wait_seconds_threshold: float = 1e-6,
        discard_threshold: int = 1,
        utilization_threshold: float = 0.9,
        bandwidth: float = LINK_BANDWIDTH_BYTES,
    ) -> None:
        if wait_seconds_threshold < 0 or discard_threshold < 0:
            raise ReproError("congestion thresholds must be non-negative")
        self.events = events
        self.wait_seconds_threshold = wait_seconds_threshold
        self.discard_threshold = discard_threshold
        self.utilization_threshold = utilization_threshold
        self.bandwidth = bandwidth
        self.findings: List[CongestionFinding] = []
        #: Total xmit-wait seconds attributed to flagged ports.
        self.congestion_seconds = 0.0
        self._seen: Dict[Tuple[str, int], Tuple[int, int]] = {}

    def scan(self, store, *, window: Optional[float] = None) -> List[
        CongestionFinding
    ]:
        """Scan the store; returns (and records) this round's findings."""
        new: List[CongestionFinding] = []
        for node, port in store.endpoints():
            latest = store.counters_at(node, port)
            wait_ticks = latest.get("xmit_wait", 0)
            discards = latest.get("xmit_discards", 0)
            prev_wait, prev_disc = self._seen.get((node, port), (0, 0))
            self._seen[(node, port)] = (wait_ticks, discards)
            wait_growth = (wait_ticks - prev_wait) / 1e9
            discard_growth = discards - prev_disc
            utilization = (
                store.rate(node, port, "xmit_data", window=window)
                / self.bandwidth
            )
            if not (
                wait_growth >= self.wait_seconds_threshold
                or discard_growth >= self.discard_threshold
                or utilization >= self.utilization_threshold
            ):
                continue
            sample = store.latest(node, port, "xmit_wait") or store.latest(
                node, port, "xmit_packets"
            )
            finding = CongestionFinding(
                time=sample[0] if sample else 0.0,
                node=node,
                port=port,
                wait_seconds=wait_growth,
                discards=discard_growth,
                utilization=utilization,
            )
            new.append(finding)
            self.congestion_seconds += max(wait_growth, 0.0)
            if self.events is not None:
                self.events.report_congestion(
                    node, port, severity=wait_growth
                )
        self.findings.extend(new)
        return new


class TrafficMatrix:
    """Measured delivered-packet counts per (source, destination) endpoint.

    Built from :attr:`repro.sim.dataplane.DataPlaneStats.flows` (delivered
    packets only), so ``total`` always equals the delivered-packet total
    of the runs that fed it — the auditability property the acceptance
    gate checks.
    """

    def __init__(
        self, counts: Optional[Mapping[Tuple[int, int], int]] = None
    ) -> None:
        self.counts: Dict[Tuple[int, int], int] = dict(counts or {})

    @classmethod
    def from_flows(cls, flows: Mapping[Tuple[int, int], int]) -> "TrafficMatrix":
        """Matrix over one run's delivered flows."""
        return cls(flows)

    def add(self, flows: Mapping[Tuple[int, int], int]) -> None:
        """Fold another run's delivered flows into the matrix."""
        for pair in sorted(flows):
            self.counts[pair] = self.counts.get(pair, 0) + flows[pair]

    @property
    def endpoints(self) -> List[int]:
        """All LIDs appearing as source or destination, sorted."""
        out = set()
        for src, dst in self.counts:
            out.add(src)
            out.add(dst)
        return sorted(out)

    @property
    def total(self) -> int:
        """Total delivered packets in the matrix."""
        return sum(self.counts.values())

    def row_sum(self, src_lid: int) -> int:
        """Delivered packets originated by one endpoint."""
        return sum(
            n for (s, _d), n in sorted(self.counts.items()) if s == src_lid
        )

    def rows(self) -> List[List[int]]:
        """Dense matrix aligned with :attr:`endpoints` (row = source)."""
        eps = self.endpoints
        return [
            [self.counts.get((s, d), 0) for d in eps] for s in eps
        ]

    def aggregate(
        self,
        owner_of: Mapping[int, str],
        *,
        default: str = "unassigned",
    ) -> Dict[Tuple[str, str], int]:
        """Fold endpoint LIDs into owner groups (VMs, tenants, ...)."""
        out: Dict[Tuple[str, str], int] = {}
        for (src, dst) in sorted(self.counts):
            key = (owner_of.get(src, default), owner_of.get(dst, default))
            out[key] = out.get(key, 0) + self.counts[(src, dst)]
        return out

    def to_json(self) -> Dict[str, object]:
        """The export shape the migration planner consumes."""
        return {
            "endpoints": self.endpoints,
            "rows": self.rows(),
            "row_sums": [self.row_sum(lid) for lid in self.endpoints],
            "total": self.total,
        }


def lid_owner_map(cloud) -> Dict[int, str]:
    """LID -> VM name for every placed VM in a cloud (per-VM matrices)."""
    out: Dict[int, str] = {}
    for name in sorted(cloud.vms):
        lid = cloud.vms[name].lid
        if lid is not None:
            out[lid] = name
    return out


def lid_tenant_map(cloud) -> Dict[int, str]:
    """LID -> hypervisor name (the tenant grouping chaos reports use)."""
    out: Dict[int, str] = {}
    for name in sorted(cloud.vms):
        vm = cloud.vms[name]
        if vm.lid is not None and vm.hypervisor_name is not None:
            out[vm.lid] = vm.hypervisor_name
    return out
