"""Fabric telemetry: PMA counter sweeps, time series, and analytics.

The paper's balancing and migration-downtime claims are claims about
*observable fabric load*; this package reproduces the layer that observes
it. Per-port PMA counters (populated natively by the data-plane simulator
and the MAD transport) are swept by a :class:`PerfManager` through costed,
fault-injectable MADs into a bounded :class:`TimeSeriesStore`; analytics
on top derive link utilization, hot ports, congestion threshold events
(raised into the :class:`~repro.sm.traps.FabricEventManager`) and measured
per-VM/per-tenant :class:`TrafficMatrix` exports — the input the
traffic-aware migration planning item consumes.
"""

from repro.telemetry.analytics import (
    LINK_BANDWIDTH_BYTES,
    CongestionDetector,
    CongestionFinding,
    PortRate,
    TrafficMatrix,
    lid_owner_map,
    lid_tenant_map,
    port_rates,
    top_talkers,
)
from repro.telemetry.harness import TelemetryHarness
from repro.telemetry.perf import PerfManager, SweepReport
from repro.telemetry.store import SeriesKey, TimeSeriesStore

__all__ = [
    "LINK_BANDWIDTH_BYTES",
    "CongestionDetector",
    "CongestionFinding",
    "PortRate",
    "TrafficMatrix",
    "lid_owner_map",
    "lid_tenant_map",
    "port_rates",
    "top_talkers",
    "TelemetryHarness",
    "PerfManager",
    "SweepReport",
    "SeriesKey",
    "TimeSeriesStore",
]
