"""Bounded ring-buffer storage for swept PMA counter samples.

The PerfManager appends one cumulative sample per (node, port, counter)
per sweep, stamped with the observability hub's sim clock. Each series is
a fixed-capacity ring: long chaos runs stay bounded (old samples are
evicted, counted in ``evictions``) while windowed rates over the recent
past stay exact. Values are the *reconstructed monotonic totals* (the
PerfManager has already unwrapped the 32-bit wire reads), so a rate is
always ``delta(value) / delta(time)`` without wrap special cases here.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["SeriesKey", "TimeSeriesStore"]

#: One series is identified by (node name, port number, counter name).
SeriesKey = Tuple[str, int, str]


class TimeSeriesStore:
    """Fixed-capacity per-series sample rings with windowed-rate queries."""

    def __init__(self, *, capacity: int = 512) -> None:
        if capacity < 2:
            raise ReproError(
                "time-series capacity must be >= 2 (rates need two samples)"
            )
        self.capacity = capacity
        self._series: Dict[SeriesKey, Deque[Tuple[float, int]]] = {}
        #: Samples ever appended (monotonic, unlike the bounded contents).
        self.samples_total = 0
        #: Samples pushed out of a full ring.
        self.evictions = 0

    # -- ingestion -----------------------------------------------------------

    def append(
        self, node: str, port: int, counter: str, time: float, value: int
    ) -> None:
        """Record one cumulative sample for (node, port, counter)."""
        key = (node, int(port), counter)
        ring = self._series.get(key)
        if ring is None:
            ring = self._series[key] = deque(maxlen=self.capacity)
        if len(ring) == self.capacity:
            self.evictions += 1
        ring.append((float(time), int(value)))
        self.samples_total += 1

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: SeriesKey) -> bool:
        return key in self._series

    def keys(self) -> List[SeriesKey]:
        """All series keys, sorted (deterministic exposition order)."""
        return sorted(self._series)

    def endpoints(self) -> List[Tuple[str, int]]:
        """Distinct (node, port) pairs with at least one sample, sorted."""
        return sorted({(k[0], k[1]) for k in self._series})

    def series(
        self, node: str, port: int, counter: str
    ) -> List[Tuple[float, int]]:
        """The retained (time, value) samples of one series, oldest first."""
        return list(self._series.get((node, int(port), counter), ()))

    def latest(
        self, node: str, port: int, counter: str
    ) -> Optional[Tuple[float, int]]:
        """Most recent (time, value) sample, or None."""
        ring = self._series.get((node, int(port), counter))
        return ring[-1] if ring else None

    @property
    def last_time(self) -> float:
        """Newest sample timestamp across all series (0.0 when empty)."""
        newest = 0.0
        for ring in self._series.values():
            if ring and ring[-1][0] > newest:
                newest = ring[-1][0]
        return newest

    def counters_at(self, node: str, port: int) -> Dict[str, int]:
        """Latest value of every counter swept on one port."""
        out: Dict[str, int] = {}
        for key in sorted(self._series):
            if key[0] == node and key[1] == int(port):
                ring = self._series[key]
                if ring:
                    out[key[2]] = ring[-1][1]
        return out

    # -- rates ---------------------------------------------------------------

    def rate(
        self,
        node: str,
        port: int,
        counter: str,
        *,
        window: Optional[float] = None,
    ) -> float:
        """Average increase per sim second over the retained samples.

        With *window* set, only samples within the trailing window (ending
        at the newest sample) contribute; if fewer than two fall inside,
        the rate falls back to the last two samples. Returns 0.0 with
        fewer than two samples total or a zero time span.
        """
        ring = self._series.get((node, int(port), counter))
        if ring is None or len(ring) < 2:
            return 0.0
        samples = list(ring)
        if window is not None:
            if window <= 0:
                raise ReproError("rate window must be positive")
            horizon = samples[-1][0] - window
            inside = [s for s in samples if s[0] >= horizon]
            samples = inside if len(inside) >= 2 else samples[-2:]
        t0, v0 = samples[0]
        t1, v1 = samples[-1]
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)

    # -- export --------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable dump (sorted series, [time, value] pairs)."""
        return {
            "capacity": self.capacity,
            "samples_total": self.samples_total,
            "evictions": self.evictions,
            "series": [
                {
                    "node": key[0],
                    "port": key[1],
                    "counter": key[2],
                    "samples": [[t, v] for t, v in self._series[key]],
                }
                for key in sorted(self._series)
            ],
        }
