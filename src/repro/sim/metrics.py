"""Metric primitives: counters, timers and streaming histograms.

Experiment harnesses accumulate results into these instead of ad-hoc dicts
so every benchmark prints comparable summaries.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import SimulationError

__all__ = ["Counter", "Timer", "Histogram", "MetricRegistry"]


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by *amount* (non-negative)."""
        if amount < 0:
            raise SimulationError(f"counter {self.name}: negative increment")
        self.value += amount


class Timer:
    """Wall-clock stopwatch usable as a context manager."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.laps: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        lap = time.perf_counter() - self._start
        self.total += lap
        self.laps.append(lap)
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap duration."""
        return self.total / len(self.laps) if self.laps else 0.0


class Histogram:
    """A simple value accumulator with percentile queries."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        if math.isnan(value):
            raise SimulationError(f"histogram {self.name}: NaN observation")
        self._values.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch."""
        for v in values:
            self.observe(v)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Mean of observations (0 when empty)."""
        return float(np.mean(self._values)) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0 when empty)."""
        return float(np.max(self._values)) if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0 when empty)."""
        return float(np.min(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 <= q <= 100)."""
        if not 0 <= q <= 100:
            raise SimulationError(f"percentile {q} out of [0, 100]")
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def values(self) -> np.ndarray:
        """All observations as an array."""
        return np.asarray(self._values, dtype=np.float64)


class MetricRegistry:
    """Named metric namespace for one experiment run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._counters.setdefault(name, Counter(name))

    def timer(self, name: str) -> Timer:
        """Get or create a timer."""
        return self._timers.setdefault(name, Timer(name))

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        return self._histograms.setdefault(name, Histogram(name))

    def summary(self) -> Dict[str, float]:
        """Flat name -> value snapshot of everything registered."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[f"{name}.count"] = float(c.value)
        for name, t in self._timers.items():
            out[f"{name}.total_s"] = t.total
            out[f"{name}.mean_s"] = t.mean
        for name, h in self._histograms.items():
            out[f"{name}.mean"] = h.mean
            out[f"{name}.p50"] = h.percentile(50)
            out[f"{name}.p99"] = h.percentile(99)
            out[f"{name}.max"] = h.max
        return out
