"""Metric primitives: counters, gauges, timers and streaming histograms.

Experiment harnesses accumulate results into these instead of ad-hoc dicts
so every benchmark prints comparable summaries. The
:class:`MetricRegistry` additionally supports **labeled** counters and
gauges (Prometheus-style dimensions) and can render its whole contents as
a Prometheus text exposition or a JSON snapshot — the exposition half of
the observability layer.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricRegistry",
]

#: Label sets are canonicalized to a sorted tuple of (key, value) pairs so
#: ``counter("x", a="1", b="2")`` and ``counter("x", b="2", a="1")`` hit
#: the same series.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _labels_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_series(name: str, labels: LabelKey) -> str:
    if not labels:
        return _prom_name(name)
    rendered = ",".join(
        f'{_prom_name(k)}="{_escape_label(v)}"' for k, v in labels
    )
    return f"{_prom_name(name)}{{{rendered}}}"


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by *amount* (non-negative)."""
        if amount < 0:
            raise SimulationError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        if math.isnan(value):
            raise SimulationError(f"gauge {self.name}: NaN value")
        self.value = float(value)

    def add(self, amount: float = 1.0) -> None:
        """Adjust by *amount* (may be negative)."""
        self.set(self.value + amount)


class Timer:
    """Wall-clock stopwatch usable as a context manager."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.laps: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:
            raise SimulationError(
                f"timer {self.name!r}: __exit__ without a matching __enter__"
            )
        lap = time.perf_counter() - self._start
        self.total += lap
        self.laps.append(lap)
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap duration."""
        return self.total / len(self.laps) if self.laps else 0.0


#: Default histogram bucket upper bounds: one decade ladder from 1 ns to
#: 10 s, wide enough for both MAD latencies and whole-run durations.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-9, 2)
)


class Histogram:
    """A value accumulator with percentile queries and Prometheus buckets.

    Observations are kept raw (percentiles stay exact); the *buckets*
    upper bounds only shape the cumulative ``_bucket{le=...}`` series of
    the text exposition.
    """

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        if not self.buckets:
            raise SimulationError(
                f"histogram {name}: needs at least one bucket bound"
            )
        if any(
            b2 <= b1 for b1, b2 in zip(self.buckets, self.buckets[1:])
        ) or any(math.isnan(b) for b in self.buckets):
            raise SimulationError(
                f"histogram {name}: bucket bounds must strictly increase"
            )
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        if math.isnan(value):
            raise SimulationError(f"histogram {self.name}: NaN observation")
        self._values.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch."""
        for v in values:
            self.observe(v)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Mean of observations (0 when empty)."""
        return float(np.mean(self._values)) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0 when empty)."""
        return float(np.max(self._values)) if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0 when empty)."""
        return float(np.min(self._values)) if self._values else 0.0

    @property
    def sum(self) -> float:
        """Sum of observations."""
        return float(np.sum(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 <= q <= 100)."""
        if not 0 <= q <= 100:
            raise SimulationError(f"percentile {q} out of [0, 100]")
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def values(self) -> np.ndarray:
        """All observations as an array."""
        return np.asarray(self._values, dtype=np.float64)

    def bucket_counts(self) -> List[int]:
        """Cumulative observation counts per bucket bound (``le`` semantics).

        Aligned with :attr:`buckets`; observations above the last bound
        only appear in the implicit ``+Inf`` bucket (:attr:`count`).
        """
        if not self._values:
            return [0] * len(self.buckets)
        values = np.asarray(self._values, dtype=np.float64)
        return [int(np.count_nonzero(values <= b)) for b in self.buckets]


class MetricRegistry:
    """Named metric namespace for one experiment run.

    ``counter``/``gauge`` accept optional keyword labels; each distinct
    label set is its own series, exactly as in Prometheus::

        reg.counter("repro_smp_total", kind="lft_block").add()
        reg.gauge("repro_vms_running").set(12)
        print(reg.render_prometheus())
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter (one series per label set)."""
        key = (name, _labels_key(labels))
        return self._counters.setdefault(key, Counter(name))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge (one series per label set)."""
        key = (name, _labels_key(labels))
        return self._gauges.setdefault(key, Gauge(name))

    def timer(self, name: str) -> Timer:
        """Get or create a timer."""
        return self._timers.setdefault(name, Timer(name))

    def histogram(
        self, name: str, *, buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        """Get or create a histogram (*buckets* applies on creation only)."""
        if name not in self._histograms:
            self._histograms[name] = (
                Histogram(name, buckets)
                if buckets is not None
                else Histogram(name)
            )
        return self._histograms[name]

    def reset(self) -> None:
        """Drop every registered metric (start of a fresh run)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._timers)
            + len(self._histograms)
        )

    # -- exposition ----------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Flat name -> value snapshot of everything registered."""
        out: Dict[str, float] = {}
        for (name, labels), c in self._counters.items():
            out[f"{_series_display(name, labels)}.count"] = float(c.value)
        for (name, labels), g in self._gauges.items():
            out[f"{_series_display(name, labels)}.value"] = g.value
        for name, t in self._timers.items():
            out[f"{name}.total_s"] = t.total
            out[f"{name}.mean_s"] = t.mean
        for name, h in self._histograms.items():
            out[f"{name}.mean"] = h.mean
            out[f"{name}.p50"] = h.percentile(50)
            out[f"{name}.p99"] = h.percentile(99)
            out[f"{name}.max"] = h.max
        return out

    def render_prometheus(self) -> str:
        """The registry as a Prometheus text-format exposition."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}

        def type_line(name: str, kind: str) -> None:
            prom = _prom_name(name)
            if seen_types.get(prom) != kind:
                lines.append(f"# TYPE {prom} {kind}")
                seen_types[prom] = kind

        for (name, labels), c in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{_prom_series(name, labels)} {c.value}")
        for (name, labels), g in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{_prom_series(name, labels)} {_fmt(g.value)}")
        for name, t in sorted(self._timers.items()):
            type_line(f"{name}_seconds", "summary")
            prom = _prom_name(name)
            lines.append(f"{prom}_seconds_sum {_fmt(t.total)}")
            lines.append(f"{prom}_seconds_count {len(t.laps)}")
        for name, h in sorted(self._histograms.items()):
            # Proper Prometheus histogram exposition: cumulative buckets
            # (le semantics), then the implicit +Inf, _sum and _count.
            type_line(name, "histogram")
            prom = _prom_name(name)
            for bound, cum in zip(h.buckets, h.bucket_counts()):
                lines.append(f'{prom}_bucket{{le="{_fmt(bound)}"}} {cum}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{prom}_sum {_fmt(h.sum)}")
            lines.append(f"{prom}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot_json(self) -> Dict[str, Any]:
        """The registry as a JSON-serializable dict."""
        return {
            "counters": {
                _series_display(name, labels): c.value
                for (name, labels), c in sorted(self._counters.items())
            },
            "gauges": {
                _series_display(name, labels): g.value
                for (name, labels), g in sorted(self._gauges.items())
            },
            "timers": {
                name: {"total_s": t.total, "laps": len(t.laps), "mean_s": t.mean}
                for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "p50": h.percentile(50),
                    "p99": h.percentile(99),
                    "max": h.max,
                    "buckets": [
                        [bound, cum]
                        for bound, cum in zip(h.buckets, h.bucket_counts())
                    ],
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def dump_json(self) -> str:
        """:meth:`snapshot_json` rendered as a JSON string."""
        return json.dumps(self.snapshot_json(), indent=2, sort_keys=True)


def _series_display(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
