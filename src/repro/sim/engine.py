"""A small discrete-event simulation engine.

Used to cross-check the analytic cost model (equations (2)-(5)) against an
event-level replay of SMP issue: the SM issues LFT-update SMPs with a
bounded in-flight window, each completing after its own network latency.
The engine is generic (heap-ordered events, simulated clock) so workloads
can also schedule VM churn and migration timelines on it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "SimulationEngine", "replay_smp_pipeline"]


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class SimulationEngine:
    """Heap-based event loop with a monotonic simulated clock."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, delay: float, action: Callable[[], None], *, label: str = ""
    ) -> Event:
        """Schedule *action* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        ev = Event(self._now + delay, next(self._seq), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(
        self, when: float, action: Callable[[], None], *, label: str = ""
    ) -> Event:
        """Schedule *action* at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} < now ({self._now})"
            )
        ev = Event(when, next(self._seq), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def run(self, *, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or *until* is reached).

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0].time > until:
                    self._now = until
                    break
                ev = heapq.heappop(self._heap)
                self._now = ev.time
                ev.action()
                self.events_processed += 1
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear pending events and rewind the clock."""
        self._heap.clear()
        self._now = 0.0
        self.events_processed = 0


def replay_smp_pipeline(
    latencies: List[float], window: int
) -> float:
    """Event-level completion time of issuing SMPs with *window* in flight.

    The SM sends the next SMP as soon as a slot frees (OpenSM's pipelined
    LFT updates, section VI-B). With ``window=1`` this equals the serial
    sum of equation (2); large windows approach the max single latency.
    """
    if window < 1:
        raise SimulationError("window must be >= 1")
    engine = SimulationEngine()
    pending = list(reversed(latencies))  # pop() issues in original order
    state = {"in_flight": 0, "finish": 0.0}

    def issue() -> None:
        while pending and state["in_flight"] < window:
            lat = pending.pop()
            state["in_flight"] += 1
            engine.schedule(lat, complete, label="smp-done")

    def complete() -> None:
        state["in_flight"] -= 1
        state["finish"] = engine.now
        issue()

    issue()
    engine.run()
    return state["finish"]
