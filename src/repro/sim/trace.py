"""Event traces: an append-only record of what happened in a run.

Examples and the workload drivers emit trace records so a run can be
inspected (or asserted on in tests) after the fact without print-debugging.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """An in-memory event log with simple filtering."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def emit(self, time: float, kind: str, **detail: Any) -> TraceRecord:
        """Append one record."""
        rec = TraceRecord(time=time, kind=kind, detail=dict(detail))
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in emit order."""
        return [r for r in self._records if r.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent record (of *kind*, if given)."""
        pool = self._records if kind is None else self.of_kind(kind)
        return pool[-1] if pool else None

    def kinds(self) -> List[str]:
        """Distinct kinds seen, in first-appearance order."""
        seen: List[str] = []
        for r in self._records:
            if r.kind not in seen:
                seen.append(r.kind)
        return seen

    # -- persistence ---------------------------------------------------------

    def to_jsonl(self, path: Union[str, Path]) -> int:
        """Write the trace as JSON Lines; returns the record count.

        Detail values that are not JSON-serializable are stringified, so a
        trace can always be persisted even when callers attached rich
        objects.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fp:
            for rec in self._records:
                fp.write(
                    json.dumps(
                        {
                            "time": rec.time,
                            "kind": rec.kind,
                            "detail": rec.detail,
                        },
                        default=str,
                    )
                )
                fp.write("\n")
        return len(self._records)

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "Trace":
        """Rebuild a trace previously written by :meth:`to_jsonl`."""
        trace = cls()
        with Path(path).open("r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                trace.emit(
                    float(obj["time"]), str(obj["kind"]), **obj.get("detail", {})
                )
        return trace
