"""Discrete-event engine, metrics and traces."""

from repro.sim.dataplane import DataPlaneSimulator, DataPlaneStats, Packet
from repro.sim.engine import Event, SimulationEngine, replay_smp_pipeline
from repro.sim.metrics import Counter, Histogram, MetricRegistry, Timer
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Event",
    "SimulationEngine",
    "replay_smp_pipeline",
    "DataPlaneSimulator",
    "DataPlaneStats",
    "Packet",
    "Counter",
    "Histogram",
    "MetricRegistry",
    "Timer",
    "Trace",
    "TraceRecord",
]
