"""Flow-level data-plane simulation with credit-based flow control.

Lossless IB links use credit-based flow control: a packet may only advance
when the next channel has a free buffer credit, and it keeps holding its
current channel's credit until it does. That hold-and-wait is what makes
routing deadlocks real (section VI-C): a cycle of packets each holding one
channel and waiting for the next never progresses and is only broken by the
IB **head-of-queue lifetime timeout**, which drops the stuck packet.

This simulator executes that model on the *hardware* LFTs of a topology:

* packets consult each switch's current LFT on arrival, so a reconfiguration
  performed mid-flight (a LID swap during traffic) affects in-flight packets
  exactly as it would on real switches;
* every inter-switch channel has a configurable credit count;
* a packet that waits longer than ``hoq_timeout`` is dropped and its held
  credit released — reproducing the paper's "deadlocks ... will be resolved
  by IB timeouts".

It is a flow-control-faithful, bandwidth-abstract model: serialization time
is folded into the per-hop latency, which is all the reconfiguration
experiments need.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.constants import LFT_DROP_PORT, LFT_UNSET
from repro.errors import SimulationError
from repro.fabric.node import Switch
from repro.fabric.topology import Topology
from repro.sim.engine import SimulationEngine

__all__ = ["DataPlaneStats", "Packet", "DataPlaneSimulator"]

#: A directed inter-switch channel: (switch index, out port).
ChannelId = Tuple[int, int]


@dataclass
class DataPlaneStats:
    """Outcome counters of one data-plane run.

    ``dropped_by_port`` attributes every drop to the switch port whose
    forwarding decision caused it, keyed ``(switch_name, out_port,
    reason)`` with reason one of ``timeout`` (HOQ lifetime), ``no_route``
    (unset or dead-port LFT entry) and ``port255`` (intentional
    invalidation, section VI-C) — the per-cause view telemetry discard
    counters and the static analyzer's LFT002 findings cross-check
    against. ``flows`` counts *delivered* packets per (src LID, dst LID)
    pair; its total equals ``delivered`` exactly, which is what makes a
    measured traffic matrix auditable against this struct.
    """

    injected: int = 0
    delivered: int = 0
    dropped_no_route: int = 0
    dropped_timeout: int = 0
    dropped_port255: int = 0
    latencies: List[float] = field(default_factory=list)
    dropped_by_port: Dict[Tuple[str, int, str], int] = field(
        default_factory=dict
    )
    flows: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        """Packets not yet accounted as delivered or dropped."""
        return (
            self.injected
            - self.delivered
            - self.dropped_no_route
            - self.dropped_timeout
            - self.dropped_port255
        )

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of injected packets."""
        return self.delivered / self.injected if self.injected else 0.0


class Packet:
    """One packet in flight."""

    _ids = itertools.count(1)

    def __init__(self, src_lid: int, dst_lid: int, inject_time: float) -> None:
        self.id = next(self._ids)
        self.src_lid = src_lid
        self.dst_lid = dst_lid
        self.inject_time = inject_time
        #: The (switch, port, VL) channel whose credit this packet holds
        #: (None while still at the source host or after delivery).
        self.held: Optional[Tuple[int, int, int]] = None
        #: Switch index the packet currently sits at.
        self.at_switch: Optional[int] = None
        #: Sim time this packet joined a channel's waiter queue (None when
        #: not blocked) — the source of the PortXmitWait counter.
        self.wait_start: Optional[float] = None
        self.hops = 0
        self.dropped = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Packet#{self.id} {self.src_lid}->{self.dst_lid}>"


class _Channel:
    """Credit state of one directed inter-switch channel."""

    __slots__ = ("credits", "waiters")

    def __init__(self, credits: int) -> None:
        self.credits = credits
        self.waiters: Deque[Packet] = deque()


class DataPlaneSimulator:
    """Drives packets across a topology's switches under credit flow control."""

    def __init__(
        self,
        topology: Topology,
        *,
        engine: Optional[SimulationEngine] = None,
        channel_credits: int = 1,
        hop_time: float = 1e-6,
        hoq_timeout: float = 1e-3,
        lid_to_vl: Optional[Dict[int, int]] = None,
        packet_bytes: int = 256,
    ) -> None:
        if channel_credits < 1:
            raise SimulationError("channels need at least one credit")
        if hop_time <= 0 or hoq_timeout <= 0:
            raise SimulationError("hop_time and hoq_timeout must be positive")
        if packet_bytes < 1:
            raise SimulationError("packet_bytes must be positive")
        self.topology = topology
        self.engine = engine or SimulationEngine()
        self.channel_credits = channel_credits
        self.hop_time = hop_time
        self.hoq_timeout = hoq_timeout
        #: Octets charged to the PMA data counters per packet (the model
        #: is bandwidth-abstract; a fixed MTU-sized payload keeps byte
        #: counters proportional to packet counters).
        self.packet_bytes = packet_bytes
        #: Destination LID -> virtual lane. Each VL has its own credit pool
        #: per physical channel, so traffic on different lanes never blocks
        #: each other — the mechanism behind DFSSSP/LASH deadlock freedom.
        #: Missing LIDs ride VL 0.
        self.lid_to_vl = dict(lid_to_vl or {})
        self.stats = DataPlaneStats()

        # Static maps from the physical graph.
        self._switches = topology.switches
        self._p2p: Dict[ChannelId, int] = {}
        #: (switch, out port) -> in-port on the peer, for rcv counters.
        self._peer_port: Dict[ChannelId, int] = {}
        #: Delivery edges: (switch, out port) -> the HCA-side Port, so
        #: delivery can feed the host port's PMA receive counters.
        self._host_ports: Dict[ChannelId, object] = {}
        for sw in self._switches:
            for port in sw.connected_ports():
                peer = port.remote
                assert peer is not None
                key = (sw.index, port.num)
                if isinstance(peer.node, Switch):
                    self._p2p[key] = peer.node.index
                    self._peer_port[key] = peer.num
                else:
                    self._host_ports[key] = peer
        # Channels are keyed (switch, out port, VL) and created lazily:
        # each VL gets its own credit pool on every physical link.
        self._channels: Dict[Tuple[int, int, int], _Channel] = {}

    # -- injection -----------------------------------------------------------

    def inject(self, src_lid: int, dst_lid: int, *, delay: float = 0.0) -> Packet:
        """Inject one packet from the host holding *src_lid*."""
        port = self.topology.port_of_lid(src_lid)
        if port is None or port.remote is None:
            raise SimulationError(f"source LID {src_lid} is not attached")
        entry = port.remote
        if not isinstance(entry.node, Switch):
            raise SimulationError(f"source LID {src_lid} not behind a switch")
        pkt = Packet(src_lid, dst_lid, 0.0)
        self.stats.injected += 1
        leaf = entry.node.index
        host_port, entry_port = port, entry

        def arrive() -> None:
            pkt.inject_time = self.engine.now
            pkt.at_switch = leaf
            # Host edge: transmit on the HCA port, receive on the leaf.
            hc = host_port.node.port_counters(host_port.num)
            hc.xmit_packets += 1
            hc.xmit_data += self.packet_bytes
            ec = entry_port.node.port_counters(entry_port.num)
            ec.rcv_packets += 1
            ec.rcv_data += self.packet_bytes
            self._forward(pkt)

        self.engine.schedule(delay, arrive, label=f"inject#{pkt.id}")
        return pkt

    def inject_flows(
        self, flows: List[Tuple[int, int]], *, spacing: float = 0.0
    ) -> List[Packet]:
        """Inject a list of (src_lid, dst_lid) flows, optionally staggered."""
        return [
            self.inject(s, d, delay=i * spacing)
            for i, (s, d) in enumerate(flows)
        ]

    def run(self, *, until: Optional[float] = None) -> DataPlaneStats:
        """Run the event loop to completion (or *until*)."""
        self.engine.run(until=until)
        return self.stats

    # -- movement ------------------------------------------------------------

    def _forward(self, pkt: Packet) -> None:
        """Packet sits at a switch: look up the LFT and try to advance."""
        if pkt.dropped:
            return
        assert pkt.at_switch is not None
        sw = self._switches[pkt.at_switch]
        out = sw.lft.get(pkt.dst_lid)
        if out == LFT_DROP_PORT or out == LFT_UNSET:
            # Port 255 / unprogrammed: the partially-static reconfiguration
            # of section VI-C intentionally drops this traffic.
            self._drop(
                pkt,
                "port255" if out == LFT_DROP_PORT else "no_route",
                port=0,
            )
            return
        key = (pkt.at_switch, out)
        if key in self._host_ports:
            self._deliver(pkt, key)
            return
        if key not in self._p2p:
            # The LFT points at a port with no live peer (a cable that
            # died after the tables were computed): the port transmits
            # nothing, so the packet sits at the head of its queue for
            # the HOQ lifetime — charged as xmit-wait — and is then
            # discarded as unroutable.
            def dead_port_drop() -> None:
                if not pkt.dropped:
                    sw.port_counters(out).add_wait(self.hoq_timeout)
                    self._drop(pkt, "no_route", port=out)

            self.engine.schedule(
                self.hoq_timeout, dead_port_drop, label=f"dead#{pkt.id}"
            )
            return
        vl = self.lid_to_vl.get(pkt.dst_lid, 0)
        vkey = (key[0], key[1], vl)
        channel = self._channels.get(vkey)
        if channel is None:
            channel = self._channels[vkey] = _Channel(self.channel_credits)
        if channel.credits > 0:
            channel.credits -= 1
            self._advance(pkt, vkey)
        else:
            channel.waiters.append(pkt)
            pkt.wait_start = self.engine.now
            deadline_hops = pkt.hops

            def maybe_timeout() -> None:
                # Still waiting on the same channel after the head-of-queue
                # lifetime: drop (the IB timeout that resolves deadlocks).
                if (
                    not pkt.dropped
                    and pkt.hops == deadline_hops
                    and pkt in channel.waiters
                ):
                    channel.waiters.remove(pkt)
                    # The full lifetime was spent blocked on this port.
                    sw.port_counters(out).add_wait(self.hoq_timeout)
                    pkt.wait_start = None
                    self._drop(pkt, "timeout", port=out)

            self.engine.schedule(
                self.hoq_timeout, maybe_timeout, label=f"hoq#{pkt.id}"
            )

    def _advance(self, pkt: Packet, channel_key: Tuple[int, int, int]) -> None:
        """Credit acquired: traverse the channel, then release the old one."""
        phys = channel_key[:2]
        nxt = self._p2p[phys]
        # PMA counters: transmit on the egress, receive on the far ingress.
        egress = self._switches[phys[0]].port_counters(phys[1])
        if pkt.wait_start is not None:
            # The packet queued for this credit: the blocked interval is
            # the egress port's PortXmitWait.
            egress.add_wait(self.engine.now - pkt.wait_start)
            pkt.wait_start = None
        egress.xmit_packets += 1
        egress.xmit_data += self.packet_bytes
        ingress = self._switches[nxt].port_counters(self._peer_port[phys])
        ingress.rcv_packets += 1
        ingress.rcv_data += self.packet_bytes

        def arrive() -> None:
            if pkt.dropped:
                self._release(channel_key)
                return
            self._release_held(pkt)
            pkt.held = channel_key
            pkt.at_switch = nxt
            pkt.hops += 1
            if pkt.hops > 4 * max(len(self._switches), 1):
                self._drop(pkt, "timeout")  # runaway loop guard
                return
            self._forward(pkt)

        self.engine.schedule(self.hop_time, arrive, label=f"hop#{pkt.id}")

    def _release_held(self, pkt: Packet) -> None:
        if pkt.held is not None:
            self._release(pkt.held)
            pkt.held = None

    def _release(self, channel_key: Tuple[int, int, int]) -> None:
        """Return a credit and wake the first waiter, if any."""
        channel = self._channels[channel_key]
        if channel.waiters:
            waiter = channel.waiters.popleft()
            # Credit handed directly to the waiter.
            self._advance(waiter, channel_key)
        else:
            channel.credits += 1

    def _deliver(self, pkt: Packet, key: ChannelId) -> None:
        self._release_held(pkt)
        # Host edge: transmit on the leaf's port, receive on the HCA port.
        egress = self._switches[key[0]].port_counters(key[1])
        egress.xmit_packets += 1
        egress.xmit_data += self.packet_bytes
        host = self._host_ports[key]
        hc = host.node.port_counters(host.num)  # type: ignore[attr-defined]
        hc.rcv_packets += 1
        hc.rcv_data += self.packet_bytes
        self.stats.delivered += 1
        flow = (pkt.src_lid, pkt.dst_lid)
        self.stats.flows[flow] = self.stats.flows.get(flow, 0) + 1
        self.stats.latencies.append(
            self.engine.now + self.hop_time - pkt.inject_time
        )

    def _drop(
        self, pkt: Packet, reason: str, *, port: Optional[int] = None
    ) -> None:
        pkt.dropped = True
        if pkt.at_switch is not None:
            sw = self._switches[pkt.at_switch]
            if port is None:
                out = sw.lft.get(pkt.dst_lid)
                port = out if 0 <= out <= sw.num_ports else 0
            counters = sw.port_counters(port)
            if reason == "timeout":
                counters.hoq_discards += 1
            else:
                counters.unroutable_discards += 1
            drop_key = (sw.name, port, reason)
            self.stats.dropped_by_port[drop_key] = (
                self.stats.dropped_by_port.get(drop_key, 0) + 1
            )
        self._release_held(pkt)
        if reason == "timeout":
            self.stats.dropped_timeout += 1
        elif reason == "port255":
            self.stats.dropped_port255 += 1
        else:
            self.stats.dropped_no_route += 1
