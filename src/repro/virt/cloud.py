"""The cloud manager — the OpenStack stand-in of the emulation testbed.

Owns the fleet of hypervisors on one IB subnet, drives the subnet manager
and the active LID scheme, schedules VM placement, and triggers live
migrations through the :class:`~repro.core.migration.LiveMigrationOrchestrator`
(section VII-B: "We modified OpenStack to allow IB SR-IOV VFs to be used by
VMs and when a live migration is triggered the following four steps are
executed ...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CapacityError,
    DuplicateResourceError,
    TransportError,
    UnknownResourceError,
    VirtError,
)
from repro.fabric.addressing import GuidAllocator
from repro.fabric.node import HCA
from repro.fabric.topology import Topology
from repro.obs.hub import get_hub, span
from repro.sm.subnet_manager import ConfigureReport, SubnetManager
from repro.sriov.vswitch import VSwitchHCA
from repro.virt.hypervisor import Hypervisor
from repro.virt.sa_cache import SubnetAdministrator
from repro.virt.vm import VirtualMachine, VmState

__all__ = ["CloudManager", "PlacementPolicy"]


@dataclass
class PlacementPolicy:
    """VM scheduling policy.

    * ``first-fit`` — registration order;
    * ``spread`` — most free VFs first;
    * ``pack`` — fewest free VFs that still fit;
    * ``leaf-affinity`` — prefer hypervisors on leaves that already host
      VMs. Keeping tenants leaf-local makes future migrations intra-leaf —
      the section VI-D case where reconfiguration touches a single switch
      and arbitrarily many migrations can run concurrently.
    """

    name: str = "first-fit"

    def choose(self, candidates: List[Hypervisor]) -> Hypervisor:
        """Pick a hypervisor among those with capacity."""
        if not candidates:
            raise CapacityError("no hypervisor has a free VF")
        if self.name == "spread":
            return max(candidates, key=lambda h: h.free_vf_count)
        if self.name == "pack":
            return min(candidates, key=lambda h: h.free_vf_count)
        if self.name == "first-fit":
            return candidates[0]
        if self.name == "leaf-affinity":
            return self._leaf_affinity(candidates)
        raise VirtError(f"unknown placement policy {self.name!r}")

    @staticmethod
    def _leaf_affinity(candidates: List[Hypervisor]) -> Hypervisor:
        def leaf_of(h: Hypervisor):
            peer = h.uplink_port.remote
            return peer.node if peer is not None else None

        # Population per leaf across the candidate set's leaves.
        population: Dict[object, int] = {}
        for h in candidates:
            population.setdefault(leaf_of(h), 0)
        for h in candidates:
            population[leaf_of(h)] += h.vm_count
        # Fullest already-populated leaf wins; empty leaves only when no
        # populated leaf has room. Ties: most free VFs (headroom).
        return max(
            candidates,
            key=lambda h: (
                population[leaf_of(h)] > 0,
                population[leaf_of(h)],
                h.free_vf_count,
            ),
        )


class CloudManager:
    """One vHPC cloud: hypervisors + VMs on an IB subnet."""

    def __init__(
        self,
        topology: Topology,
        *,
        sm: Optional[SubnetManager] = None,
        built: Optional[object] = None,
        lid_scheme: str = "prepopulated",
        routing_engine: str = "minhop",
        num_vfs: int = 16,
        placement: Union[str, PlacementPolicy] = "first-fit",
        destination_routed_smps: bool = False,
    ) -> None:
        # Imported here (not at module top) to keep the package import
        # graph acyclic: core.migration needs virt.hypervisor.
        from repro.core.lid_schemes import (
            DynamicLidScheme,
            PrepopulatedLidScheme,
        )
        from repro.core.migration import LiveMigrationOrchestrator

        self.topology = topology
        self.sm = sm or SubnetManager(topology, engine=routing_engine, built=built)
        self.guids = GuidAllocator()
        self.sa = SubnetAdministrator()
        self.num_vfs = num_vfs
        self.placement = (
            PlacementPolicy(placement) if isinstance(placement, str) else placement
        )
        if lid_scheme == "prepopulated":
            self.scheme = PrepopulatedLidScheme(
                self.sm, destination_routed=destination_routed_smps
            )
        elif lid_scheme == "dynamic":
            self.scheme = DynamicLidScheme(
                self.sm, destination_routed=destination_routed_smps
            )
        else:
            raise VirtError(f"unknown LID scheme {lid_scheme!r}")
        self.orchestrator = LiveMigrationOrchestrator(self.sm, self.scheme)
        self.orchestrator.listeners.append(self._on_migrated)
        self.hypervisors: Dict[str, Hypervisor] = {}
        self.vms: Dict[str, VirtualMachine] = {}
        self._vm_serial = 0

    # -- fleet construction ---------------------------------------------------

    def adopt_hca_as_hypervisor(
        self, hca: HCA, *, num_vfs: Optional[int] = None
    ) -> Hypervisor:
        """Turn an existing (cabled) HCA into a vSwitch hypervisor."""
        if hca.name in self.hypervisors:
            raise VirtError(f"{hca.name} is already a hypervisor")
        vsw = VSwitchHCA(hca, self.guids, num_vfs=num_vfs or self.num_vfs)
        hyp = Hypervisor(hca.name, vsw)
        self.hypervisors[hca.name] = hyp
        self.scheme.register_hypervisor(vsw)
        return hyp

    def adopt_all_hcas(self) -> List[Hypervisor]:
        """Turn every HCA of the topology into a hypervisor."""
        return [
            self.adopt_hca_as_hypervisor(h)
            for h in self.topology.hcas
            if h.name not in self.hypervisors
        ]

    def bring_up_subnet(self) -> ConfigureReport:
        """Full subnet bring-up: LIDs (base + scheme), routing, LFTs."""
        report = ConfigureReport()
        with span(
            "bring_up_subnet",
            scheme=self.scheme.name,
            hypervisors=len(self.hypervisors),
        ):
            report.discovery = self.sm.discover()
            self.sm.assign_lids()
            self.scheme.initialize()
            tables = self.sm.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.sm.distribute()
        return report

    # -- VM lifecycle -------------------------------------------------------------

    def boot_vm(
        self,
        name: Optional[str] = None,
        *,
        on: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> VirtualMachine:
        """Create and place one VM (scheduler-chosen node unless ``on``)."""
        hyp = self._admit_boot(name := self._boot_name(name), on)
        vm = VirtualMachine(
            name, self.guids.allocate_virtual(), tenant=tenant
        )
        with span("boot_vm", vm=name, hypervisor=hyp.name):
            try:
                boot = self.scheme.boot_vm(hyp.vswitch, name)
            except TransportError:
                # The scheme already rolled the allocation back; the cloud
                # keeps no trace of the failed VM. Callers (churn, chaos)
                # decide whether to retry.
                get_hub().metrics.counter(
                    "repro_vm_boot_failures_total"
                ).add(1)
                raise
            vf = hyp.vswitch.vf(int(boot.vf_name.rsplit("VF", 1)[1]))
            hyp.host_vm(vm, vf)
            self.vms[name] = vm
            self.sa.register(vm.gid, boot.lid)
        metrics = get_hub().metrics
        metrics.counter("repro_vm_boots_total").add(1)
        metrics.gauge("repro_vms_running").set(self.running_vm_count)
        return vm

    def boot_vms_batch(
        self,
        specs: Sequence[Tuple[Optional[str], Optional[str], Optional[str]]],
    ) -> Tuple[List[VirtualMachine], "object"]:
        """Boot several VMs as one coalesced LFT sweep.

        ``specs`` is a sequence of ``(name, on, tenant)`` triples (any
        element may be ``None``). Placement is decided per spec in order,
        so earlier batch members consume capacity the later ones see.
        Under the dynamic LID scheme the whole batch's forwarding entries
        are programmed by :meth:`LidScheme.boot_vms` in one pass — LIDs
        sharing a 64-entry LFT block on a switch cost one SMP instead of
        one per boot. All-or-nothing: a transport failure rolls the whole
        batch back and nothing is registered.

        Returns ``(vms, batch_report)``.
        """
        resolved: List[Tuple[str, Hypervisor, Optional[str]]] = []
        claimed: Dict[str, int] = {}
        for name, on, tenant in specs:
            name = self._boot_name(name)
            if any(name == taken for taken, _, _ in resolved):
                raise DuplicateResourceError(
                    f"VM {name!r} appears twice in the batch"
                )
            hyp = self._admit_boot(name, on, claimed=claimed)
            claimed[hyp.name] = claimed.get(hyp.name, 0) + 1
            resolved.append((name, hyp, tenant))
        with span("boot_vms_batch", size=len(resolved)):
            batch = self.scheme.boot_vms(
                [(hyp.vswitch, name) for name, hyp, _ in resolved]
            )
            vms: List[VirtualMachine] = []
            for (name, hyp, tenant), boot in zip(resolved, batch.boots):
                vm = VirtualMachine(
                    name, self.guids.allocate_virtual(), tenant=tenant
                )
                vf = hyp.vswitch.vf(int(boot.vf_name.rsplit("VF", 1)[1]))
                hyp.host_vm(vm, vf)
                self.vms[name] = vm
                self.sa.register(vm.gid, boot.lid)
                vms.append(vm)
        metrics = get_hub().metrics
        metrics.counter("repro_vm_boots_total").add(len(vms))
        metrics.gauge("repro_vms_running").set(self.running_vm_count)
        return vms, batch

    def _boot_name(self, name: Optional[str]) -> str:
        if name is None:
            self._vm_serial += 1
            name = f"vm{self._vm_serial}"
        return name

    def _admit_boot(
        self,
        name: str,
        on: Optional[str],
        *,
        claimed: Optional[Dict[str, int]] = None,
    ) -> Hypervisor:
        """Validate one boot and pick its hypervisor.

        ``claimed`` holds VFs already promised to earlier members of a
        batch (not yet attached), so batch placement never oversubscribes
        a vSwitch.
        """
        claimed = claimed or {}
        if name in self.vms:
            raise DuplicateResourceError(f"VM {name!r} already exists")

        def headroom(h: Hypervisor) -> int:
            return h.free_vf_count - claimed.get(h.name, 0)

        if on is not None:
            hyp = self._hypervisor(on)
            if headroom(hyp) <= 0:
                raise CapacityError(f"{on} has no free VF")
            return hyp
        return self.placement.choose(
            [h for h in self.hypervisors.values() if headroom(h) > 0]
        )

    def stop_vm(self, name: str) -> None:
        """Shut a VM down and release its VF (and LID, scheme permitting)."""
        vm = self._vm(name)
        hyp = self._hypervisor(vm.hypervisor_name)
        with span("stop_vm", vm=name, hypervisor=hyp.name):
            vf = vm.detach_vf()
            vf.detach()
            self.scheme.shutdown_vm(hyp.vswitch, vf)
            hyp.evict_vm(vm)
            vm.state = VmState.STOPPED
            self.sa.unregister(vm.gid)
            del self.vms[name]
        metrics = get_hub().metrics
        metrics.counter("repro_vm_stops_total").add(1)
        metrics.gauge("repro_vms_running").set(self.running_vm_count)

    def live_migrate(self, vm_name: str, dest_name: str):
        """Live-migrate one VM; returns the MigrationReport."""
        vm = self._vm(vm_name)
        src = self._hypervisor(vm.hypervisor_name)
        dest = self._hypervisor(dest_name)
        return self.orchestrator.migrate(vm, src, dest)

    def evacuate(self, hypervisor_name: str):
        """Drain a hypervisor for maintenance: migrate every VM elsewhere.

        The flexibility argument of sections V-B/VI: spare VFs on other
        nodes make disaster recovery and maintenance possible without
        downtime. Returns the list of MigrationReports.
        """
        hyp = self._hypervisor(hypervisor_name)
        reports = []
        with span("evacuate", hypervisor=hypervisor_name) as sp:
            stranded = 0
            for vm in list(hyp.running_vms()):
                candidates = [
                    h
                    for h in self.hypervisors.values()
                    if h is not hyp and h.has_capacity()
                ]
                try:
                    dest = self.placement.choose(candidates)
                except CapacityError:
                    # Graceful partial drain: the remaining VMs stay on
                    # the source (still running, still routed) instead of
                    # the evacuation dying mid-way with half the node
                    # drained. The caller sees the shortfall explicitly.
                    stranded = len(list(hyp.running_vms()))
                    break
                reports.append(self.orchestrator.migrate(vm, hyp, dest))
            sp.set_attributes(migrations=len(reports), stranded=stranded)
            if stranded:
                get_hub().metrics.counter(
                    "repro_evacuate_stranded_vms_total"
                ).add(stranded)
        return reports

    def _on_migrated(self, report) -> None:
        # vSwitch migration keeps the LID, so the SA record stays correct;
        # re-register anyway to model the SM's post-migration update.
        vm = self.vms[report.vm_name]
        self.sa.register(vm.gid, report.vm_lid)

    # -- queries -----------------------------------------------------------------

    def _vm(self, name: str) -> VirtualMachine:
        try:
            return self.vms[name]
        except KeyError:
            raise UnknownResourceError(f"unknown VM {name!r}") from None

    def _hypervisor(self, name: Optional[str]) -> Hypervisor:
        if name is None:
            raise VirtError("VM is not placed on any hypervisor")
        try:
            return self.hypervisors[name]
        except KeyError:
            raise UnknownResourceError(
                f"unknown hypervisor {name!r}"
            ) from None

    def vms_of_tenant(self, tenant: Optional[str]) -> List[VirtualMachine]:
        """All VMs owned by *tenant*, in registration order."""
        return [vm for vm in self.vms.values() if vm.tenant == tenant]

    @property
    def total_capacity(self) -> int:
        """Total VM slots (VFs) in the cloud."""
        return sum(h.vswitch.num_vfs for h in self.hypervisors.values())

    @property
    def running_vm_count(self) -> int:
        """VMs currently running."""
        return sum(
            1 for vm in self.vms.values() if vm.state is VmState.RUNNING
        )

    def fragmentation(self) -> float:
        """Fraction of hypervisors that are partially (not fully) used.

        The paper motivates migration-based optimization of fragmented
        networks (sections V-A/V-B); this is the metric the consolidation
        example drives down.
        """
        partial = 0
        used = 0
        for h in self.hypervisors.values():
            if h.vm_count > 0:
                used += 1
                if h.free_vf_count > 0:
                    partial += 1
        return partial / used if used else 0.0
