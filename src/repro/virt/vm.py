"""Virtual machines as seen by the IB layer.

A VM owns the *addresses* the paper cares about: its vGUID (and hence GID)
always travels with it; whether its LID travels too is exactly what
distinguishes the vSwitch architecture (it does) from Shared Port (it
cannot).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import VirtError
from repro.fabric.addressing import GID, GUID, make_gid
from repro.sriov.base import VirtualFunction

__all__ = ["VmState", "VirtualMachine"]


class VmState(enum.Enum):
    """VM lifecycle states."""

    RUNNING = "running"
    MIGRATING = "migrating"
    STOPPED = "stopped"


class VirtualMachine:
    """One tenant VM with a dedicated set of IB addresses."""

    def __init__(
        self, name: str, vguid: GUID, *, tenant: Optional[str] = None
    ) -> None:
        self.name = name
        self.vguid = vguid
        #: Owning tenant (``None`` for CLI scenarios that predate the
        #: multi-tenant control plane). Travels with the VM through
        #: migrations; the service layer's quota accounting recounts it
        #: straight off the cloud, so recovery never needs a ledger.
        self.tenant = tenant
        self.state = VmState.STOPPED
        self.hypervisor_name: Optional[str] = None
        self.vf: Optional[VirtualFunction] = None
        #: Number of completed live migrations (telemetry).
        self.migrations = 0

    @property
    def gid(self) -> GID:
        """The VM's GID — derived from the vGUID, so it follows the VM."""
        return make_gid(self.vguid)

    @property
    def lid(self) -> Optional[int]:
        """The VM's LID — the LID of the VF it currently holds."""
        return self.vf.lid if self.vf is not None else None

    @property
    def is_running(self) -> bool:
        """True while placed and not mid-migration."""
        return self.state is VmState.RUNNING

    def attach_vf(self, vf: VirtualFunction, hypervisor_name: str) -> None:
        """Record the passthrough attachment (the VF is already claimed)."""
        if self.vf is not None:
            raise VirtError(f"{self.name} already holds {self.vf.name}")
        self.vf = vf
        self.hypervisor_name = hypervisor_name
        self.state = VmState.RUNNING

    def detach_vf(self) -> VirtualFunction:
        """Drop the VF reference (step 1 of the migration flow)."""
        if self.vf is None:
            raise VirtError(f"{self.name} holds no VF")
        vf = self.vf
        self.vf = None
        return vf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VM {self.name} state={self.state.value}"
            f" lid={self.lid} on={self.hypervisor_name}>"
        )
