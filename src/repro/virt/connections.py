"""Reliable-connection tracking across migrations.

IB RC connections address their peer by (GID, LID). When a VM migrates,
whether established connections survive depends entirely on which addresses
moved (paper sections I and III):

* **vSwitch** migration moves LID+vGUID+GID together — every cached peer
  address stays correct and nothing breaks;
* **Shared Port** migration (Guay et al., the paper's reference [9])
  carries the vGUID but the LID becomes the destination hypervisor's —
  every peer of the migrated VM holds a stale DLID and must re-resolve via
  SA PathRecord queries (the query storm reference [10] mitigates);
* the paper's *emulation* additionally swaps hypervisor LIDs, which breaks
  the connections of every co-resident VM too — the reason the testbed ran
  one VM per node.

The :class:`ConnectionManager` makes all three measurable: it records
connections with the DLIDs the peers cached at connect time, audits them
against the SA's current truth, and repairs stale ones (counting the SA
round-trips, optionally through the reference-[10] cache).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import VirtError
from repro.fabric.addressing import GID
from repro.virt.sa_cache import SaPathCache, SubnetAdministrator

__all__ = ["Connection", "AuditReport", "ConnectionManager"]


@dataclass
class Connection:
    """One established RC connection with the peers' cached DLIDs."""

    cid: int
    a_gid: GID
    b_gid: GID
    #: DLID side A cached for B, and vice versa.
    a_cached_dlid: int
    b_cached_dlid: int

    def endpoints(self) -> Tuple[GID, GID]:
        """Both endpoint GIDs."""
        return (self.a_gid, self.b_gid)


@dataclass
class AuditReport:
    """Result of checking every connection against the SA's truth."""

    healthy: List[int] = field(default_factory=list)
    broken: List[int] = field(default_factory=list)
    #: Connections whose endpoint vanished entirely (VM stopped).
    orphaned: List[int] = field(default_factory=list)

    @property
    def broken_count(self) -> int:
        """Connections with at least one stale DLID."""
        return len(self.broken)


class ConnectionManager:
    """Tracks RC connections between VM GIDs and their cached DLIDs."""

    def __init__(
        self,
        sa: SubnetAdministrator,
        *,
        use_cache: bool = False,
    ) -> None:
        self.sa = sa
        self.cache: Optional[SaPathCache] = SaPathCache(sa) if use_cache else None
        self._connections: Dict[int, Connection] = {}
        self._ids = itertools.count(1)
        #: SA PathRecord round-trips spent on repairs.
        self.repair_queries = 0

    # -- establishment --------------------------------------------------------

    def _resolve(self, dgid: GID) -> int:
        if self.cache is not None:
            return self.cache.resolve(dgid).dlid
        return self.sa.query(dgid).dlid

    def connect(self, a_gid: GID, b_gid: GID) -> Connection:
        """Establish a connection; each side resolves the other's DLID."""
        conn = Connection(
            cid=next(self._ids),
            a_gid=a_gid,
            b_gid=b_gid,
            a_cached_dlid=self._resolve(b_gid),
            b_cached_dlid=self._resolve(a_gid),
        )
        self._connections[conn.cid] = conn
        return conn

    def connection(self, cid: int) -> Connection:
        """Look a connection up by id."""
        try:
            return self._connections[cid]
        except KeyError:
            raise VirtError(f"unknown connection {cid}") from None

    @property
    def count(self) -> int:
        """Open connections."""
        return len(self._connections)

    # -- audit & repair ----------------------------------------------------------

    def _truth(self, gid: GID) -> Optional[int]:
        rec = self.sa._records.get(gid.as_int)
        return rec.dlid if rec is not None else None

    def audit(self) -> AuditReport:
        """Compare every cached DLID with the SA's current records."""
        report = AuditReport()
        for conn in self._connections.values():
            truth_b = self._truth(conn.b_gid)
            truth_a = self._truth(conn.a_gid)
            if truth_a is None or truth_b is None:
                report.orphaned.append(conn.cid)
            elif (
                conn.a_cached_dlid != truth_b
                or conn.b_cached_dlid != truth_a
            ):
                report.broken.append(conn.cid)
            else:
                report.healthy.append(conn.cid)
        return report

    def repair(self) -> int:
        """Re-resolve every broken connection; returns SA queries spent.

        With the reference-[10] cache enabled, stale entries are refreshed
        through it (one SA query per stale *endpoint*, shared by all its
        connections); without it, every broken connection side queries the
        SA directly — the storm the paper describes.
        """
        audit = self.audit()
        before = self.sa.stats.queries
        for cid in audit.broken:
            conn = self._connections[cid]
            if conn.a_cached_dlid != self._truth(conn.b_gid):
                if self.cache is not None:
                    self.cache.invalidate(conn.b_gid)
                conn.a_cached_dlid = self._resolve(conn.b_gid)
            if conn.b_cached_dlid != self._truth(conn.a_gid):
                if self.cache is not None:
                    self.cache.invalidate(conn.a_gid)
                conn.b_cached_dlid = self._resolve(conn.a_gid)
        spent = self.sa.stats.queries - before
        self.repair_queries += spent
        return spent

    def drop_orphans(self) -> int:
        """Close connections whose endpoint disappeared; returns count."""
        audit = self.audit()
        for cid in audit.orphaned:
            del self._connections[cid]
        return len(audit.orphaned)
