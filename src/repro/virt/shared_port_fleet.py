"""A Shared Port cloud — the baseline the vSwitch architecture replaces.

Models VM placement and migration under the SR-IOV Shared Port model
(section IV-A): every VM shares its hypervisor's LID, so

* a migrated VM's LID *changes* to the destination hypervisor's LID
  (Guay et al., reference [9]) — its peers hold stale DLIDs;
* the paper's emulation variant that swaps the two hypervisors' LIDs to
  let the VM "keep" one additionally breaks every co-resident VM on both
  nodes — hence the testbed's one-VM-per-node restriction.

The fleet publishes VM GID→LID records to the same
:class:`~repro.virt.sa_cache.SubnetAdministrator` the vSwitch cloud uses,
so :class:`~repro.virt.connections.ConnectionManager` can audit either
architecture identically — that comparison is the motivation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MigrationError, VirtError
from repro.fabric.addressing import GuidAllocator
from repro.fabric.topology import Topology
from repro.sm.lid_manager import LidManager
from repro.sriov.shared_port import SharedPortHCA
from repro.virt.sa_cache import SubnetAdministrator
from repro.virt.vm import VirtualMachine, VmState

__all__ = ["SharedPortMigrationOutcome", "SharedPortFleet"]


@dataclass
class SharedPortMigrationOutcome:
    """What one Shared Port migration did to the address space."""

    vm_name: str
    old_lid: int
    new_lid: int
    #: VMs whose LID changed as a side effect (LID-swap variant only).
    collaterally_relocated: List[str] = field(default_factory=list)

    @property
    def lid_changed(self) -> bool:
        """Shared Port cannot preserve the LID across hypervisors."""
        return self.old_lid != self.new_lid


class SharedPortFleet:
    """Hypervisors with Shared Port HCAs plus a minimal VM lifecycle."""

    def __init__(
        self,
        topology: Topology,
        *,
        num_vfs: int = 16,
        sa: Optional[SubnetAdministrator] = None,
    ) -> None:
        self.topology = topology
        self.sa = sa or SubnetAdministrator()
        self.guids = GuidAllocator()
        self.lid_manager = LidManager(topology)
        self.num_vfs = num_vfs
        self.hcas: Dict[str, SharedPortHCA] = {}
        self.vms: Dict[str, VirtualMachine] = {}
        self._vm_serial = 0

    # -- fleet -----------------------------------------------------------------

    def adopt_all_hcas(self) -> None:
        """Wrap every topology HCA in a Shared Port adapter and assign the
        single shared LID per node."""
        self.lid_manager.assign_base_lids()
        for hca in self.topology.hcas:
            sp = SharedPortHCA(hca, self.guids, num_vfs=self.num_vfs)
            sp.lid = hca.port(1).lid
            self.hcas[hca.name] = sp

    def _hca(self, name: str) -> SharedPortHCA:
        try:
            return self.hcas[name]
        except KeyError:
            raise VirtError(f"unknown hypervisor {name!r}") from None

    # -- VM lifecycle --------------------------------------------------------------

    def boot_vm(self, on: str, name: Optional[str] = None) -> VirtualMachine:
        """Start a VM on hypervisor *on*; it shares the node's LID."""
        sp = self._hca(on)
        if name is None:
            self._vm_serial += 1
            name = f"spvm{self._vm_serial}"
        if name in self.vms:
            raise VirtError(f"VM {name!r} already exists")
        vm = VirtualMachine(name, self.guids.allocate_virtual())
        vf = sp.attach_vm(name)
        vf.guid = vm.vguid
        vm.attach_vf(vf, on)
        self.vms[name] = vm
        assert vm.lid is not None
        self.sa.register(vm.gid, vm.lid)
        return vm

    def co_residents(self, vm: VirtualMachine) -> List[str]:
        """Other VMs sharing *vm*'s hypervisor (and therefore its LID)."""
        sp = self._hca(vm.hypervisor_name)
        return [n for n in sp.active_vms() if n != vm.name]

    # -- migration variants -----------------------------------------------------------

    def migrate_vm(self, vm_name: str, dest_name: str) -> SharedPortMigrationOutcome:
        """Reference-[9] style migration: vGUID moves, LID changes.

        The VM lands on the destination with the destination hypervisor's
        shared LID; its own old LID stays behind with the source node.
        """
        vm = self.vms[vm_name]
        src = self._hca(vm.hypervisor_name)
        dest = self._hca(dest_name)
        if src is dest:
            raise MigrationError("source and destination are the same node")
        old_lid = vm.lid
        assert old_lid is not None
        src_vf = vm.detach_vf()
        src_vf.detach()
        src_vf.release()
        dest_vf = dest.attach_vm(vm_name)
        dest_vf.guid = vm.vguid
        vm.attach_vf(dest_vf, dest_name)
        vm.state = VmState.RUNNING
        vm.migrations += 1
        new_lid = vm.lid
        assert new_lid is not None
        self.sa.register(vm.gid, new_lid)
        return SharedPortMigrationOutcome(
            vm_name=vm_name, old_lid=old_lid, new_lid=new_lid
        )

    def migrate_vm_with_lid_swap(
        self, vm_name: str, dest_name: str
    ) -> SharedPortMigrationOutcome:
        """The paper's emulation variant: swap the two hypervisors' LIDs so
        the migrating VM keeps its LID value — at the cost of relocating
        the LID of *every* VM on both nodes (why the testbed allowed one
        VM per node)."""
        vm = self.vms[vm_name]
        src = self._hca(vm.hypervisor_name)
        dest = self._hca(dest_name)
        if src is dest:
            raise MigrationError("source and destination are the same node")
        old_lid = vm.lid
        assert old_lid is not None

        collateral = [
            n
            for n in sorted(set(src.active_vms()) | set(dest.active_vms()))
            if n != vm_name
        ]
        src_lid, dest_lid = src.lid, dest.lid
        assert src_lid is not None and dest_lid is not None
        src.lid, dest.lid = dest_lid, src_lid
        outcome = self.migrate_vm(vm_name, dest_name)
        # Re-publish every affected VM's (unchanged GID -> changed LID).
        for name in collateral:
            other = self.vms[name]
            assert other.lid is not None
            self.sa.register(other.gid, other.lid)
        return SharedPortMigrationOutcome(
            vm_name=vm_name,
            old_lid=old_lid,
            new_lid=self.vms[vm_name].lid,
            collaterally_relocated=sorted(collateral),
        )
