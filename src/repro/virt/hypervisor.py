"""Hypervisors: compute nodes with an SR-IOV vSwitch HCA.

Mirrors the paper's testbed compute nodes (section VII-A): each hypervisor
owns one HCA whose PF it drives, and hands VFs to VMs. The LID policy is
delegated to the active :class:`~repro.core.lid_schemes.LidScheme`; the
hypervisor only tracks placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import VirtError
from repro.fabric.node import HCA, Port
from repro.sriov.base import VirtualFunction
from repro.sriov.vswitch import VSwitchHCA
from repro.virt.vm import VirtualMachine, VmState

__all__ = ["Hypervisor"]


class Hypervisor:
    """One compute node hosting VMs behind a vSwitch-enabled HCA."""

    def __init__(self, name: str, vswitch: VSwitchHCA) -> None:
        self.name = name
        self.vswitch = vswitch
        self.vms: Dict[str, VirtualMachine] = {}

    @property
    def hca(self) -> HCA:
        """The underlying physical HCA."""
        return self.vswitch.hca

    @property
    def uplink_port(self) -> Port:
        """The HCA port shared by all functions."""
        return self.vswitch.uplink_port

    @property
    def pf_lid(self) -> Optional[int]:
        """The hypervisor's own LID."""
        return self.vswitch.pf_lid

    @property
    def free_vf_count(self) -> int:
        """Available VM slots (an available VM slot == an available VF)."""
        return len(self.vswitch.free_vfs())

    @property
    def vm_count(self) -> int:
        """VMs currently placed here."""
        return len(self.vms)

    def has_capacity(self) -> bool:
        """True iff at least one VF is free."""
        return self.free_vf_count > 0

    def host_vm(self, vm: VirtualMachine, vf: VirtualFunction) -> None:
        """Record that *vm* now runs here on *vf*."""
        if vm.name in self.vms:
            raise VirtError(f"{vm.name} already on {self.name}")
        self.vms[vm.name] = vm
        vm.attach_vf(vf, self.name)

    def evict_vm(self, vm: VirtualMachine) -> None:
        """Forget *vm* (it stopped or migrated away)."""
        if vm.name not in self.vms:
            raise VirtError(f"{vm.name} is not on {self.name}")
        del self.vms[vm.name]

    def running_vms(self) -> List[VirtualMachine]:
        """VMs in RUNNING state."""
        return [vm for vm in self.vms.values() if vm.state is VmState.RUNNING]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Hypervisor {self.name}: {self.vm_count} VMs,"
            f" {self.free_vf_count} free VFs>"
        )
