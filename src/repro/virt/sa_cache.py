"""Subnet Administration path-record queries and the caching scheme.

Background substrate from the authors' companion work (the paper's
reference [10], "A Novel Query Caching Scheme for Dynamic InfiniBand
Subnets"): when a VM migrates, every peer that loses connectivity normally
storms the SM with SA PathRecord queries to rediscover the VM's address.
With vSwitch migration the VM *keeps* all three addresses, so a local cache
keyed by GID stays valid and the reconnect needs no SA round-trip at all.

The model exposes both behaviours so examples and benchmarks can quantify
the query-storm reduction:

* uncached peers query the SA on every reconnect;
* cached peers consult :class:`SaPathCache`; entries are updated in place
  on migration events (LID may change location but not value — so under
  the vSwitch schemes entries remain valid and hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import VirtError
from repro.fabric.addressing import GID

__all__ = ["PathRecord", "SaQueryStats", "SubnetAdministrator", "SaPathCache"]


@dataclass(frozen=True)
class PathRecord:
    """The subset of an SA PathRecord that matters here."""

    dgid: GID
    dlid: int

    def __post_init__(self) -> None:
        if self.dlid <= 0:
            raise VirtError(f"invalid DLID {self.dlid} in path record")


@dataclass
class SaQueryStats:
    """SA load accounting."""

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def queries_saved(self) -> int:
        """Round-trips the cache absorbed."""
        return self.cache_hits


class SubnetAdministrator:
    """The SA: answers PathRecord queries from its GID -> LID registry."""

    def __init__(self) -> None:
        self._records: Dict[int, PathRecord] = {}
        self.stats = SaQueryStats()

    def register(self, gid: GID, lid: int) -> None:
        """Publish (or update) the path record for one endpoint."""
        self._records[gid.as_int] = PathRecord(dgid=gid, dlid=lid)

    def unregister(self, gid: GID) -> None:
        """Remove an endpoint's record."""
        self._records.pop(gid.as_int, None)

    def query(self, dgid: GID) -> PathRecord:
        """One SA PathRecord round-trip (counted)."""
        self.stats.queries += 1
        try:
            return self._records[dgid.as_int]
        except KeyError:
            raise VirtError(f"SA has no path record for {dgid}") from None


class SaPathCache:
    """A peer-side cache of path records (reference [10]'s mechanism)."""

    def __init__(self, sa: SubnetAdministrator) -> None:
        self.sa = sa
        self._cache: Dict[int, PathRecord] = {}
        self.stats = SaQueryStats()

    def resolve(self, dgid: GID) -> PathRecord:
        """Resolve a destination, hitting the SA only on cache miss."""
        rec = self._cache.get(dgid.as_int)
        if rec is not None:
            self.stats.cache_hits += 1
            return rec
        self.stats.cache_misses += 1
        rec = self.sa.query(dgid)
        self._cache[dgid.as_int] = rec
        return rec

    def invalidate(self, dgid: GID) -> None:
        """Drop one entry (what a Shared Port LID change forces)."""
        self._cache.pop(dgid.as_int, None)

    def entry_still_valid(self, dgid: GID) -> bool:
        """Does the cached record match the SA's current truth?

        Under vSwitch migration the VM keeps LID+GID, so this stays True
        and reconnects need zero SA queries; under Shared Port the LID
        changed and the entry is stale.
        """
        rec = self._cache.get(dgid.as_int)
        if rec is None:
            return False
        truth = self.sa._records.get(dgid.as_int)
        return truth is not None and truth.dlid == rec.dlid

    @property
    def size(self) -> int:
        """Cached entries."""
        return len(self._cache)
