"""Virtualization layer: VMs, hypervisors, the cloud manager and the SA
path-record cache."""

from repro.virt.vm import VirtualMachine, VmState
from repro.virt.hypervisor import Hypervisor
from repro.virt.sa_cache import (
    PathRecord,
    SaPathCache,
    SaQueryStats,
    SubnetAdministrator,
)
from repro.virt.connections import AuditReport, Connection, ConnectionManager
from repro.virt.shared_port_fleet import SharedPortFleet, SharedPortMigrationOutcome
from repro.virt.cloud import CloudManager, PlacementPolicy

__all__ = [
    "VirtualMachine",
    "VmState",
    "Hypervisor",
    "PathRecord",
    "SaPathCache",
    "SaQueryStats",
    "SubnetAdministrator",
    "Connection",
    "AuditReport",
    "ConnectionManager",
    "SharedPortFleet",
    "SharedPortMigrationOutcome",
    "CloudManager",
    "PlacementPolicy",
]
