"""The SR-IOV vSwitch architecture (paper section IV-B, Fig. 2).

Each VF is a complete vHCA: its own full set of IB addresses (LID, vGUID,
GID) and a dedicated QP space. To the rest of the subnet the HCA looks like
a small switch (the *vSwitch*) with the PF and the VFs hanging off it; the
vSwitch itself shares the PF's LID (section V-A: "the vSwitch does not need
to occupy an additional LID as it can share the LID with the PF").

Whether VF LIDs exist from boot or appear when VMs start is the policy of
the two LID schemes in :mod:`repro.core.lid_schemes`; this class only holds
the mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.constants import DEFAULT_NUM_VFS, MAX_NUM_VFS
from repro.errors import SriovError
from repro.fabric.addressing import GUID, GuidAllocator
from repro.fabric.node import HCA, Port
from repro.sriov.base import FunctionState, PhysicalFunction, VirtualFunction

__all__ = ["VSwitchHCA"]


class VSwitchHCA:
    """An SR-IOV HCA under the vSwitch model."""

    def __init__(
        self,
        hca: HCA,
        guids: GuidAllocator,
        *,
        num_vfs: int = DEFAULT_NUM_VFS,
    ) -> None:
        if not 0 < num_vfs <= MAX_NUM_VFS:
            raise SriovError(f"num_vfs must be in 1..{MAX_NUM_VFS}")
        self.hca = hca
        self.pf = PhysicalFunction(hca, guids.allocate_physical())
        self.vfs: List[VirtualFunction] = [
            VirtualFunction(hca, i, guids.allocate_virtual(), qp0_proxied=False)
            for i in range(1, num_vfs + 1)
        ]
        self._guids = guids

    # -- identity ------------------------------------------------------------

    @property
    def uplink_port(self) -> Port:
        """The physical port all functions share (the vSwitch uplink)."""
        return self.hca.port(1)

    @property
    def pf_lid(self) -> Optional[int]:
        """The PF's LID (shared with the vSwitch itself)."""
        return self.pf.lid

    @property
    def num_vfs(self) -> int:
        """VFs carved out of this HCA."""
        return len(self.vfs)

    def function_lids(self) -> Dict[str, Optional[int]]:
        """LID of every function — distinct per function here."""
        out: Dict[str, Optional[int]] = {self.pf.name: self.pf.lid}
        for vf in self.vfs:
            out[vf.name] = vf.lid
        return out

    def lids_in_use(self) -> List[int]:
        """All LIDs currently held by this HCA's functions."""
        lids = [f.lid for f in [self.pf, *self.vfs] if f.lid is not None]
        return sorted(lids)

    # -- VF lifecycle -----------------------------------------------------------

    def vf(self, index: int) -> VirtualFunction:
        """VF by its 1-based index."""
        for vf in self.vfs:
            if vf.index == index:
                return vf
        raise SriovError(f"{self.hca.name} has no VF{index}")

    def free_vfs(self) -> List[VirtualFunction]:
        """VFs not held by a VM."""
        return [vf for vf in self.vfs if vf.is_free]

    def first_free_vf(self) -> VirtualFunction:
        """First available VF slot (an available VM slot, section V-A)."""
        for vf in self.vfs:
            if vf.is_free:
                return vf
        raise SriovError(f"no free VF on {self.hca.name}")

    def active_vfs(self) -> List[VirtualFunction]:
        """VFs passthrough-attached to running VMs."""
        return [vf for vf in self.vfs if vf.state is FunctionState.ACTIVE]

    def set_vguid(self, vf: VirtualFunction, vguid: GUID) -> None:
        """Program an alias GUID onto a VF (effect of the vGUID SMP).

        This is what happens at the destination hypervisor before a
        migrated VM is re-attached (section V-C step a / section VII-B
        step 4): the VF takes over the GUID — and hence GID — the VM
        carried with it.
        """
        if vf not in self.vfs:
            raise SriovError(f"{vf.name} does not belong to {self.hca.name}")
        vf.guid = vguid

    def can_host_sm_in_vm(self) -> bool:
        """vSwitch VFs own a real QP0, so an SM can run inside a VM."""
        return all(vf.can_run_sm for vf in self.vfs)
