"""The SR-IOV Shared Port architecture (paper section IV-A, Fig. 1).

The HCA appears as a single port: **one LID** shared by the PF and all VFs,
one shared QP space, but per-function GIDs. Consequences the model exposes:

* a VM's LID is the hypervisor's LID — migrating the VM *changes* its LID;
* all co-resident VMs share that LID, so migrating one (with its LID, as
  the paper's emulation must) breaks connectivity for the others — the
  reason the emulation in section VII-B runs at most one VM per node;
* VFs get a proxied QP0 that discards SMPs, so no SM can run inside a VM.

This is the architecture current hardware implements and the baseline the
vSwitch proposal is measured against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.constants import DEFAULT_NUM_VFS, MAX_NUM_VFS
from repro.errors import SriovError
from repro.fabric.addressing import GuidAllocator
from repro.fabric.node import HCA
from repro.sriov.base import PhysicalFunction, VirtualFunction

__all__ = ["SharedPortHCA"]


class SharedPortHCA:
    """An SR-IOV HCA under the Shared Port model."""

    def __init__(
        self,
        hca: HCA,
        guids: GuidAllocator,
        *,
        num_vfs: int = DEFAULT_NUM_VFS,
    ) -> None:
        if not 0 < num_vfs <= MAX_NUM_VFS:
            raise SriovError(f"num_vfs must be in 1..{MAX_NUM_VFS}")
        self.hca = hca
        self.pf = PhysicalFunction(hca, guids.allocate_physical())
        self.vfs: List[VirtualFunction] = [
            VirtualFunction(hca, i, guids.allocate_virtual(), qp0_proxied=True)
            for i in range(1, num_vfs + 1)
        ]

    # -- the shared LID ---------------------------------------------------

    @property
    def lid(self) -> Optional[int]:
        """The single LID shared by PF and every VF."""
        return self.hca.port(1).lid

    @lid.setter
    def lid(self, value: Optional[int]) -> None:
        self.hca.port(1).lid = value
        self.pf.lid = value
        for vf in self.vfs:
            vf.lid = value

    def function_lids(self) -> Dict[str, Optional[int]]:
        """Every function's LID — all identical by construction."""
        out: Dict[str, Optional[int]] = {self.pf.name: self.pf.lid}
        for vf in self.vfs:
            out[vf.name] = vf.lid
        return out

    # -- VF lifecycle -------------------------------------------------------

    def free_vfs(self) -> List[VirtualFunction]:
        """VFs not attached to any VM."""
        return [vf for vf in self.vfs if vf.is_free]

    def attach_vm(self, vm_name: str) -> VirtualFunction:
        """Attach a VM to the first free VF."""
        for vf in self.vfs:
            if vf.is_free:
                vf.attach(vm_name)
                vf.lid = self.lid  # shared by definition
                return vf
        raise SriovError(f"no free VF on {self.hca.name}")

    def active_vms(self) -> List[str]:
        """Names of VMs currently holding VFs."""
        return [vf.vm_name for vf in self.vfs if vf.vm_name is not None]

    def vms_sharing_lid_with(self, vf: VirtualFunction) -> List[str]:
        """Other VMs whose connectivity depends on *vf*'s LID.

        Under Shared Port every co-resident VM shares the LID, so a LID
        migration for one VM breaks all of these (the paper's emulation
        constraint).
        """
        if vf not in self.vfs:
            raise SriovError(f"{vf.name} does not belong to {self.hca.name}")
        return [
            other.vm_name
            for other in self.vfs
            if other is not vf and other.vm_name is not None
        ]
