"""SR-IOV architectures: Shared Port (current hardware) and vSwitch (the
paper's proposal)."""

from repro.sriov.base import (
    Function,
    FunctionState,
    PhysicalFunction,
    VirtualFunction,
)
from repro.sriov.shared_port import SharedPortHCA
from repro.sriov.vswitch import VSwitchHCA

__all__ = [
    "Function",
    "FunctionState",
    "PhysicalFunction",
    "VirtualFunction",
    "SharedPortHCA",
    "VSwitchHCA",
]
