"""SR-IOV function model: physical and virtual functions.

SR-IOV lets one physical HCA appear as many lightweight instances: the
hypervisor drives the fully-featured *Physical Function* (PF) and assigns
*Virtual Functions* (VFs) to VMs as passthrough devices (paper section
II-A2). How the functions share the HCA's IB identity is what separates the
two architectures of section IV — Shared Port and vSwitch — implemented in
the sibling modules.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import SriovError
from repro.fabric.addressing import GID, GUID, make_gid
from repro.fabric.node import HCA, QueuePair

__all__ = ["FunctionState", "Function", "PhysicalFunction", "VirtualFunction"]


class FunctionState(enum.Enum):
    """Lifecycle of a virtual function."""

    FREE = "free"  # not assigned to any VM
    ACTIVE = "active"  # passthrough-attached to a running VM
    DETACHED = "detached"  # reserved (e.g. VM mid-migration), not usable


class Function:
    """Common state of PFs and VFs."""

    def __init__(self, hca: HCA, name: str, guid: GUID) -> None:
        self.hca = hca
        self.name = name
        self.guid = guid
        #: LID is None until the active LID scheme assigns one.
        self.lid: Optional[int] = None

    @property
    def gid(self) -> GID:
        """The function's GID — always derived from its current GUID."""
        return make_gid(self.guid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} lid={self.lid}>"


class PhysicalFunction(Function):
    """The hypervisor-owned, fully featured function."""

    def __init__(self, hca: HCA, guid: GUID) -> None:
        super().__init__(hca, f"{hca.name}/PF", guid)
        # The PF owns the real management QPs.
        self.qp0: QueuePair = hca.qp0
        self.qp1: QueuePair = hca.qp1

    @property
    def can_run_sm(self) -> bool:
        """A PF always has working QP0 access, so it can host an SM."""
        return self.qp0.smi_allowed


class VirtualFunction(Function):
    """A passthrough instance assignable to one VM."""

    def __init__(
        self,
        hca: HCA,
        index: int,
        guid: GUID,
        *,
        qp0_proxied: bool,
    ) -> None:
        super().__init__(hca, f"{hca.name}/VF{index}", guid)
        self.index = index
        self.state = FunctionState.FREE
        self.vm_name: Optional[str] = None
        # Shared Port exposes QP0 to VFs but discards their SMPs; vSwitch
        # gives each VF a genuine QP0 of its own (section IV).
        self.qp0 = QueuePair(0, owner=self.name, smi_allowed=not qp0_proxied)
        self.qp1 = QueuePair(1, owner=self.name, smi_allowed=True)

    @property
    def is_free(self) -> bool:
        """True iff no VM holds this VF."""
        return self.state is FunctionState.FREE

    @property
    def can_run_sm(self) -> bool:
        """Whether a VM on this VF could host an SM (vSwitch yes, Shared
        Port no — paper section IV-A)."""
        return self.qp0.smi_allowed

    def attach(self, vm_name: str) -> None:
        """Passthrough-attach this VF to a VM."""
        if self.state is not FunctionState.FREE:
            raise SriovError(f"{self.name} is {self.state.value}, not free")
        self.state = FunctionState.ACTIVE
        self.vm_name = vm_name

    def detach(self) -> None:
        """Detach from the current VM (step 1 of the migration flow)."""
        if self.state is not FunctionState.ACTIVE:
            raise SriovError(f"{self.name} is not attached")
        self.state = FunctionState.DETACHED

    def release(self) -> None:
        """Return the VF to the free pool."""
        self.state = FunctionState.FREE
        self.vm_name = None
