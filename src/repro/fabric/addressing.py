"""InfiniBand addressing: LIDs, GUIDs and GIDs (paper section II-B).

Three address types exist in an IB subnet:

* **LID** — 16-bit Local Identifier, assigned by the subnet manager, used for
  intra-subnet routing. Unicast range is 0x0001-0xBFFF (49151 addresses),
  which bounds the subnet size.
* **GUID** — 64-bit Global Unique Identifier, burned in by the manufacturer;
  the SM may assign additional *virtual* GUIDs (vGUIDs) to an HCA port,
  which is how SR-IOV VFs get their identity.
* **GID** — 128-bit Global Identifier (a valid IPv6 address), formed from a
  64-bit subnet prefix plus a port GUID.

This module provides value types plus allocators with explicit exhaustion
and double-assignment errors, because LID accounting is at the heart of the
paper's two vSwitch schemes (sections V-A and V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set

from repro.constants import MAX_UNICAST_LID, MIN_UNICAST_LID
from repro.errors import AddressingError, LidExhaustedError, LidInUseError

__all__ = [
    "LID",
    "GUID",
    "GID",
    "DEFAULT_SUBNET_PREFIX",
    "make_gid",
    "LidAllocator",
    "GuidAllocator",
]

#: Type alias: LIDs are plain ints for speed (they index numpy LFT arrays).
LID = int

#: Type alias: GUIDs are 64-bit ints.
GUID = int

#: Default 64-bit subnet prefix used when forming GIDs (the well-known
#: IB default prefix 0xfe80::/64).
DEFAULT_SUBNET_PREFIX: int = 0xFE80_0000_0000_0000


def is_valid_unicast_lid(lid: int) -> bool:
    """Return True iff *lid* lies in the unicast range 0x0001-0xBFFF."""
    return MIN_UNICAST_LID <= lid <= MAX_UNICAST_LID


@dataclass(frozen=True)
class GID:
    """A 128-bit Global Identifier: subnet prefix + port GUID.

    The GID follows the port's GUID; when a VM migrates with its vGUID the
    GID migrates automatically (paper section V-C: "Migration of the virtual
    or alias GUIDs, and consequently the GIDs, do not pose a significant
    burden").
    """

    prefix: int
    guid: GUID

    def __post_init__(self) -> None:
        if not 0 <= self.prefix < (1 << 64):
            raise AddressingError(f"GID prefix out of 64-bit range: {self.prefix:#x}")
        if not 0 <= self.guid < (1 << 64):
            raise AddressingError(f"GID GUID out of 64-bit range: {self.guid:#x}")

    @property
    def as_int(self) -> int:
        """The GID as a single 128-bit integer."""
        return (self.prefix << 64) | self.guid

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        raw = self.as_int
        groups = [(raw >> shift) & 0xFFFF for shift in range(112, -16, -16)]
        return ":".join(f"{g:04x}" for g in groups)


def make_gid(guid: GUID, prefix: int = DEFAULT_SUBNET_PREFIX) -> GID:
    """Form a GID from a port GUID and a subnet prefix (section II-B)."""
    return GID(prefix=prefix, guid=guid)


class LidAllocator:
    """Allocates unicast LIDs within one subnet.

    Supports both sequential allocation (what OpenSM does on a fresh subnet)
    and explicit assignment of a chosen LID (needed when a migrated VM
    carries its LID to the destination, or when tests reproduce the exact
    LID layouts of the paper's figures 3-5).
    """

    def __init__(
        self,
        first: int = MIN_UNICAST_LID,
        last: int = MAX_UNICAST_LID,
    ) -> None:
        if not (is_valid_unicast_lid(first) and is_valid_unicast_lid(last)):
            raise AddressingError(
                f"LID range [{first:#x}, {last:#x}] outside unicast space"
            )
        if first > last:
            raise AddressingError(f"empty LID range [{first:#x}, {last:#x}]")
        self._first = first
        self._last = last
        self._next = first
        self._in_use: Set[int] = set()
        self._released: List[int] = []

    # -- queries ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of LIDs this allocator manages."""
        return self._last - self._first + 1

    @property
    def allocated_count(self) -> int:
        """Number of LIDs currently held."""
        return len(self._in_use)

    @property
    def free_count(self) -> int:
        """Number of LIDs still available."""
        return self.capacity - self.allocated_count

    def is_allocated(self, lid: int) -> bool:
        """Return True iff *lid* is currently held."""
        return lid in self._in_use

    def allocated(self) -> Iterator[int]:
        """Iterate over held LIDs in ascending order."""
        return iter(sorted(self._in_use))

    # -- mutations --------------------------------------------------------

    def allocate(self) -> int:
        """Allocate the next available LID.

        Freed LIDs are recycled (lowest first) before fresh LIDs are used;
        this mirrors the "next available LID" policy of the dynamic LID
        assignment scheme (section V-B) which produces the non-sequential
        layouts shown in Fig. 4.
        """
        while self._released:
            lid = self._released.pop()
            if lid not in self._in_use:
                self._in_use.add(lid)
                return lid
        while self._next <= self._last and self._next in self._in_use:
            self._next += 1
        if self._next > self._last:
            raise LidExhaustedError(
                f"unicast LID space exhausted ({self.capacity} LIDs)"
            )
        lid = self._next
        self._next += 1
        self._in_use.add(lid)
        return lid

    def assign(self, lid: int) -> int:
        """Mark a specific *lid* as held (e.g. a migrated VM keeping its LID)."""
        if not is_valid_unicast_lid(lid) or not self._first <= lid <= self._last:
            raise AddressingError(f"LID {lid:#x} outside managed range")
        if lid in self._in_use:
            raise LidInUseError(f"LID {lid:#x} already assigned")
        self._in_use.add(lid)
        return lid

    def release(self, lid: int) -> None:
        """Return *lid* to the free pool."""
        if lid not in self._in_use:
            raise AddressingError(f"LID {lid:#x} not currently assigned")
        self._in_use.remove(lid)
        # Keep released list sorted descending so .pop() yields lowest first.
        self._released.append(lid)
        self._released.sort(reverse=True)

    def find_free_aligned_run(self, count: int, alignment: int) -> int:
        """First LID of a free run of *count* LIDs starting on *alignment*.

        Used for LMC assignment, where the IBA requires the 2^lmc LIDs of a
        port to be sequential and the base LID to have its low lmc bits
        zero.
        """
        if count < 1 or alignment < 1:
            raise AddressingError("count and alignment must be positive")
        start = ((self._first + alignment - 1) // alignment) * alignment
        while start + count - 1 <= self._last:
            if all(lid not in self._in_use for lid in range(start, start + count)):
                return start
            start += alignment
        raise LidExhaustedError(
            f"no free aligned run of {count} LIDs (alignment {alignment})"
        )

    def assign_range(self, first: int, count: int) -> List[int]:
        """Claim *count* consecutive LIDs starting at *first* (atomic)."""
        lids = list(range(first, first + count))
        for lid in lids:
            if not self._first <= lid <= self._last:
                raise AddressingError(f"LID {lid:#x} outside managed range")
            if lid in self._in_use:
                raise LidInUseError(f"LID {lid:#x} already assigned")
        self._in_use.update(lids)
        return lids


class GuidAllocator:
    """Hands out unique 64-bit GUIDs.

    Real GUIDs are manufacturer-assigned; for the simulation we derive them
    from a vendor prefix plus a monotonically increasing serial. The SM-side
    *virtual* GUIDs used for SR-IOV VFs come from a distinct prefix so that
    physical and virtual identities never collide.
    """

    #: 24-bit OUI used for "manufactured" (physical) GUIDs.
    PHYSICAL_OUI = 0x0002C9  # Mellanox OUI, as on the paper's testbed HCAs.
    #: OUI used for SM-assigned virtual GUIDs.
    VIRTUAL_OUI = 0x000001

    def __init__(self) -> None:
        self._serial: Dict[int, int] = {
            self.PHYSICAL_OUI: 0,
            self.VIRTUAL_OUI: 0,
        }
        self._issued: Set[int] = set()

    def _next(self, oui: int) -> GUID:
        serial = self._serial[oui] = self._serial[oui] + 1
        if serial >= (1 << 40):
            raise AddressingError("GUID serial space exhausted")
        guid = (oui << 40) | serial
        self._issued.add(guid)
        return guid

    def allocate_physical(self) -> GUID:
        """Allocate a manufacturer-style GUID (for HCAs, switches, PFs)."""
        return self._next(self.PHYSICAL_OUI)

    def allocate_virtual(self) -> GUID:
        """Allocate an SM-assigned vGUID (for SR-IOV VFs / VMs)."""
        return self._next(self.VIRTUAL_OUI)

    def is_virtual(self, guid: GUID) -> bool:
        """True iff *guid* came from the virtual pool."""
        return (guid >> 40) == self.VIRTUAL_OUI

    def was_issued(self, guid: GUID) -> bool:
        """True iff this allocator issued *guid*."""
        return guid in self._issued

    @property
    def issued_count(self) -> int:
        """Total number of GUIDs handed out."""
        return len(self._issued)


def theoretical_hypervisor_limit(vfs_per_hypervisor: int) -> int:
    """Hypervisor limit for prepopulated LIDs (paper section V-A).

    Each hypervisor consumes 1 LID for the PF plus one per VF, so with the
    paper's 16 VFs the limit is ``49151 // 17 = 2891`` hypervisors.
    """
    if vfs_per_hypervisor < 0:
        raise AddressingError("vfs_per_hypervisor must be non-negative")
    from repro.constants import UNICAST_LID_COUNT

    return UNICAST_LID_COUNT // (vfs_per_hypervisor + 1)


def theoretical_vm_limit(vfs_per_hypervisor: int) -> int:
    """VM limit under prepopulated LIDs: hypervisor limit x VFs (section V-A).

    With 16 VFs: ``2891 * 16 = 46256`` VMs.
    """
    return theoretical_hypervisor_limit(vfs_per_hypervisor) * vfs_per_hypervisor
