"""Topology builders: fat-trees, generic shapes, and dragonflies.

Every builder returns a :class:`~repro.fabric.builders.fattree.BuiltTopology`
wrapping the constructed :class:`~repro.fabric.topology.Topology` together
with the structural metadata (tree levels, pod/group membership, grid
dimensions) that structure-aware routing engines and the migration planner
consume. Builders never assign LIDs — that is the subnet manager's job.
"""

from repro.fabric.builders.dragonfly import build_dragonfly
from repro.fabric.builders.fattree import (
    BuiltTopology,
    build_three_level_fattree,
    build_two_level_fattree,
)
from repro.fabric.builders.generic import (
    build_mesh_2d,
    build_random_regular,
    build_ring,
    build_single_switch,
    build_torus_2d,
)

__all__ = [
    "BuiltTopology",
    "build_two_level_fattree",
    "build_three_level_fattree",
    "build_single_switch",
    "build_ring",
    "build_mesh_2d",
    "build_torus_2d",
    "build_random_regular",
    "build_dragonfly",
]
