"""Generic topology builders: single switch, ring, mesh, torus, random.

These are the non-fat-tree shapes used to exercise the topology-agnostic
routing engines (minhop, Up*/Down*, DFSSSP, LASH, DOR) and to show that the
vSwitch reconfiguration scheme is independent of the fabric's structure.
Grid builders register switches in row-major order so dimension-ordered
routing can recover coordinates from the dense switch index.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TopologyError
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.topology import Topology

__all__ = [
    "build_single_switch",
    "build_ring",
    "build_mesh_2d",
    "build_torus_2d",
    "build_random_regular",
]


def build_single_switch(
    num_hosts: int,
    *,
    switch_radix: Optional[int] = None,
    name: str = "single-switch",
) -> BuiltTopology:
    """One crossbar switch with ``num_hosts`` HCAs — the smallest subnet."""
    if num_hosts < 1:
        raise TopologyError(f"num_hosts must be >= 1, got {num_hosts}")
    radix = num_hosts if switch_radix is None else switch_radix
    if num_hosts > radix:
        raise TopologyError(
            f"{num_hosts} hosts exceed the {radix}-port switch radix"
        )
    topo = Topology(name)
    sw = topo.add_switch("sw0", radix)
    for j in range(num_hosts):
        hca = topo.add_hca(f"h{j}")
        topo.connect(sw, 1 + j, hca, 1)
    return BuiltTopology(topology=topo, params={"num_hosts": num_hosts})


def build_ring(
    num_switches: int,
    hosts_per_switch: int,
    *,
    switch_radix: Optional[int] = None,
    name: str = "ring",
) -> BuiltTopology:
    """A unidirectional cabling ring of ``num_switches`` switches.

    Rings of fewer than three switches would need parallel cables between
    the same pair of switches and are rejected.
    """
    if num_switches < 3:
        raise TopologyError(
            f"a ring needs >= 3 switches, got {num_switches}"
        )
    if hosts_per_switch < 0:
        raise TopologyError("hosts_per_switch must be >= 0")
    radix = (
        hosts_per_switch + 2 if switch_radix is None else switch_radix
    )
    if hosts_per_switch + 2 > radix:
        raise TopologyError(
            f"ring switch needs {hosts_per_switch + 2} ports but the radix"
            f" is {radix}"
        )
    topo = Topology(name)
    switches = [
        topo.add_switch(f"r{i}", radix) for i in range(num_switches)
    ]
    for i, sw in enumerate(switches):
        for j in range(hosts_per_switch):
            hca = topo.add_hca(f"r{i}h{j}")
            topo.connect(sw, 1 + j, hca, 1)
    for i, sw in enumerate(switches):
        topo.connect(
            sw,
            hosts_per_switch + 1,
            switches[(i + 1) % num_switches],
            hosts_per_switch + 2,
        )
    return BuiltTopology(
        topology=topo,
        params={
            "num_switches": num_switches,
            "hosts_per_switch": hosts_per_switch,
        },
    )


def _grid(
    rows: int,
    cols: int,
    hosts_per_switch: int,
    name: str,
    *,
    wrap: bool,
) -> BuiltTopology:
    if hosts_per_switch < 0:
        raise TopologyError("hosts_per_switch must be >= 0")
    h = hosts_per_switch
    radix = h + 4
    topo = Topology(name)
    # Row-major registration: switch (r, c) gets dense index r*cols + c,
    # which is what dimension-ordered routing assumes.
    grid = [
        [topo.add_switch(f"m{r}-{c}", radix) for c in range(cols)]
        for r in range(rows)
    ]
    for r in range(rows):
        for c in range(cols):
            for j in range(h):
                hca = topo.add_hca(f"m{r}-{c}h{j}")
                topo.connect(grid[r][c], 1 + j, hca, 1)
    # Ports above the hosts: h+1 east, h+2 west, h+3 south, h+4 north.
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols or wrap:
                topo.connect(
                    grid[r][c], h + 1, grid[r][(c + 1) % cols], h + 2
                )
            if r + 1 < rows or wrap:
                topo.connect(
                    grid[r][c], h + 3, grid[(r + 1) % rows][c], h + 4
                )
    return BuiltTopology(
        topology=topo, params={"rows": rows, "cols": cols}
    )


def build_mesh_2d(
    rows: int,
    cols: int,
    hosts_per_switch: int,
    *,
    name: str = "mesh2d",
) -> BuiltTopology:
    """A rows x cols 2D mesh (no wraparound; corners have degree 2)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(
            f"mesh needs at least a 1x2 grid, got {rows}x{cols}"
        )
    return _grid(rows, cols, hosts_per_switch, name, wrap=False)


def build_torus_2d(
    rows: int,
    cols: int,
    hosts_per_switch: int,
    *,
    name: str = "torus2d",
) -> BuiltTopology:
    """A rows x cols 2D torus — every switch has inter-switch degree 4.

    Dimensions below 3 would wrap a link back onto an already-cabled pair
    of switches, so they are rejected.
    """
    if rows < 3 or cols < 3:
        raise TopologyError(
            f"a torus needs >= 3 switches per dimension, got {rows}x{cols}"
        )
    return _grid(rows, cols, hosts_per_switch, name, wrap=True)


def build_random_regular(
    num_switches: int,
    degree: int,
    hosts_per_switch: int,
    *,
    seed: int = 0,
    name: str = "random-regular",
) -> BuiltTopology:
    """A connected random ``degree``-regular switch graph (Jellyfish-style).

    Deterministic for a given ``seed``. ``num_switches * degree`` must be
    even (handshake lemma) and ``degree < num_switches``.
    """
    import networkx as nx

    if num_switches < 2:
        raise TopologyError(f"need >= 2 switches, got {num_switches}")
    if degree < 1 or degree >= num_switches:
        raise TopologyError(
            f"degree must be in [1, {num_switches - 1}], got {degree}"
        )
    if (num_switches * degree) % 2:
        raise TopologyError(
            f"no {degree}-regular graph on {num_switches} switches exists"
            " (odd degree sum)"
        )
    if hosts_per_switch < 0:
        raise TopologyError("hosts_per_switch must be >= 0")

    graph = None
    for attempt in range(64):
        candidate = nx.random_regular_graph(
            degree, num_switches, seed=seed + attempt
        )
        if nx.is_connected(candidate):
            graph = candidate
            break
    if graph is None:
        raise TopologyError(
            f"could not sample a connected {degree}-regular graph on"
            f" {num_switches} switches (seed {seed})"
        )

    radix = hosts_per_switch + degree
    topo = Topology(name)
    switches = [
        topo.add_switch(f"s{i}", radix) for i in range(num_switches)
    ]
    for i, sw in enumerate(switches):
        for j in range(hosts_per_switch):
            hca = topo.add_hca(f"s{i}h{j}")
            topo.connect(sw, 1 + j, hca, 1)
    for u, v in sorted(tuple(sorted(edge)) for edge in graph.edges()):
        topo.auto_connect(switches[u], switches[v])
    return BuiltTopology(
        topology=topo,
        params={
            "num_switches": num_switches,
            "degree": degree,
            "seed": seed,
        },
    )
