"""Dragonfly builder: all-to-all router groups joined by global links.

The classic Kim/Dally shape — every group is an all-to-all clique of
routers, and every pair of groups is joined by exactly one global link
whose endpoints rotate across each group's routers. Group membership is
recorded in ``BuiltTopology.pod`` so group-aware analyses (and the
migration cost comparison of intra- vs inter-group moves) can tell the
groups apart.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TopologyError
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.node import Switch
from repro.fabric.topology import Topology

__all__ = ["build_dragonfly"]


def build_dragonfly(
    num_groups: int,
    routers_per_group: int,
    hosts_per_router: int,
    *,
    global_links_per_router: int = 1,
    name: str = "dragonfly",
) -> BuiltTopology:
    """Build a dragonfly with one global link per group pair.

    Each group must be able to terminate ``num_groups - 1`` global links
    across its ``routers_per_group * global_links_per_router`` global
    ports; builders reject configurations that cannot.
    """
    if num_groups < 2:
        raise TopologyError(
            f"a dragonfly needs >= 2 groups, got {num_groups}"
        )
    if routers_per_group < 1:
        raise TopologyError("routers_per_group must be >= 1")
    if hosts_per_router < 0:
        raise TopologyError("hosts_per_router must be >= 0")
    if global_links_per_router < 1:
        raise TopologyError("global_links_per_router must be >= 1")
    needed = num_groups - 1
    capacity = routers_per_group * global_links_per_router
    if needed > capacity:
        raise TopologyError(
            f"each group must terminate {needed} global links but only has"
            f" {routers_per_group} routers x {global_links_per_router}"
            f" global ports = {capacity}"
        )

    radix = (
        hosts_per_router + (routers_per_group - 1) + global_links_per_router
    )
    topo = Topology(name)
    pod: Dict[str, int] = {}
    groups: List[List[Switch]] = []
    for g in range(num_groups):
        routers = [
            topo.add_switch(f"g{g}r{r}", radix)
            for r in range(routers_per_group)
        ]
        for sw in routers:
            pod[sw.name] = g
        groups.append(routers)

    for g, routers in enumerate(groups):
        for r, router in enumerate(routers):
            for h in range(hosts_per_router):
                hca = topo.add_hca(f"g{g}r{r}h{h}")
                topo.connect(router, 1 + h, hca, 1)
        # Intra-group all-to-all.
        for r1 in range(routers_per_group):
            for r2 in range(r1 + 1, routers_per_group):
                topo.auto_connect(routers[r1], routers[r2])

    # One global link per group pair; endpoints rotate through each
    # group's routers so no router exceeds its global-port budget.
    next_slot = [0] * num_groups
    for a in range(num_groups):
        for b in range(a + 1, num_groups):
            router_a = groups[a][next_slot[a] // global_links_per_router]
            router_b = groups[b][next_slot[b] // global_links_per_router]
            next_slot[a] += 1
            next_slot[b] += 1
            topo.auto_connect(router_a, router_b)

    return BuiltTopology(
        topology=topo,
        pod=pod,
        params={
            "num_groups": num_groups,
            "routers_per_group": routers_per_group,
            "hosts_per_router": hosts_per_router,
            "global_links_per_router": global_links_per_router,
        },
    )
