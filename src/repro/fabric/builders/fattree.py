"""Fat-tree builders — the paper's evaluation topologies.

``build_two_level_fattree`` wires leaves to spines (the 324/648-node
instances of Table I); ``build_three_level_fattree`` builds the standard
pod-based k-ary fat-tree (the 5832/11664-node instances). Both record the
structural metadata (levels, pods, roots) that the ftree and Up*/Down*
routing engines and the migration planner exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import TopologyError
from repro.fabric.node import Switch
from repro.fabric.topology import Topology

__all__ = [
    "BuiltTopology",
    "build_two_level_fattree",
    "build_three_level_fattree",
]


@dataclass
class BuiltTopology:
    """A constructed topology plus the builder's structural metadata.

    ``level`` maps switch name -> tree level (0 = leaf, rising toward the
    roots); ``pod`` maps switch name -> pod/group index (-1 or absent for
    switches outside any pod, e.g. core switches and all of a 2-level
    tree); ``roots`` lists the top-level switches; ``params`` carries the
    integer builder parameters (radix, grid dimensions, ...) that
    structure-aware routing engines read as hints.
    """

    topology: Topology
    level: Dict[str, int] = field(default_factory=dict)
    pod: Dict[str, int] = field(default_factory=dict)
    roots: List[Switch] = field(default_factory=list)
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def leaves(self) -> List[Switch]:
        """Level-0 switches in dense-index order.

        Falls back to the switches with HCAs attached when the builder
        recorded no levels (generic topologies), so the attribute works for
        every builder.
        """
        if self.level:
            return [
                sw
                for sw in self.topology.switches
                if self.level.get(sw.name) == 0
            ]
        return self.topology.leaf_switches()

    def describe(self) -> str:
        """One-line human summary of the built fabric."""
        topo = self.topology
        parts = [
            f"{topo.name}: {topo.num_switches} switches,"
            f" {topo.num_hcas} HCAs, {len(topo.links)} links"
        ]
        if self.level:
            num_levels = max(self.level.values()) + 1
            parts.append(f"{num_levels} levels")
        if self.pod:
            num_pods = len({p for p in self.pod.values() if p >= 0})
            if num_pods:
                parts.append(f"{num_pods} pods")
        return ", ".join(parts)


def _positive(value: int, what: str) -> None:
    if value < 1:
        raise TopologyError(f"{what} must be >= 1, got {value}")


def build_two_level_fattree(
    num_leaves: int,
    hosts_per_leaf: int,
    num_spines: int,
    *,
    switch_radix: int,
    links_per_spine_pair: int = 1,
    attach_hosts: bool = True,
    name: str = "fattree-2l",
) -> BuiltTopology:
    """A two-level (leaf/spine) fat-tree.

    Every leaf connects to every spine with ``links_per_spine_pair``
    parallel cables. Hosts occupy leaf ports ``1..hosts_per_leaf`` (left
    free when ``attach_hosts`` is False, so the cloud layer can populate
    leaves later); uplinks use the ports above them.
    """
    _positive(num_leaves, "num_leaves")
    _positive(hosts_per_leaf, "hosts_per_leaf")
    _positive(num_spines, "num_spines")
    _positive(links_per_spine_pair, "links_per_spine_pair")
    leaf_ports = hosts_per_leaf + num_spines * links_per_spine_pair
    if leaf_ports > switch_radix:
        raise TopologyError(
            f"leaf needs {leaf_ports} ports ({hosts_per_leaf} hosts +"
            f" {num_spines}x{links_per_spine_pair} uplinks) but the radix"
            f" is {switch_radix}"
        )
    spine_ports = num_leaves * links_per_spine_pair
    if spine_ports > switch_radix:
        raise TopologyError(
            f"spine needs {spine_ports} ports ({num_leaves} leaves x"
            f" {links_per_spine_pair} cables) but the radix is {switch_radix}"
        )

    topo = Topology(name)
    leaves = [
        topo.add_switch(f"leaf{i}", switch_radix) for i in range(num_leaves)
    ]
    spines = [
        topo.add_switch(f"spine{i}", switch_radix) for i in range(num_spines)
    ]
    level = {sw.name: 0 for sw in leaves}
    level.update({sw.name: 1 for sw in spines})

    if attach_hosts:
        for i, leaf in enumerate(leaves):
            for j in range(hosts_per_leaf):
                hca = topo.add_hca(f"l{i}h{j}")
                topo.connect(leaf, 1 + j, hca, 1)

    for i, leaf in enumerate(leaves):
        for s in range(num_spines):
            for c in range(links_per_spine_pair):
                topo.connect(
                    leaf,
                    hosts_per_leaf + 1 + s * links_per_spine_pair + c,
                    spines[s],
                    i * links_per_spine_pair + 1 + c,
                )

    return BuiltTopology(
        topology=topo,
        level=level,
        pod={},
        roots=spines,
        params={
            "num_leaves": num_leaves,
            "hosts_per_leaf": hosts_per_leaf,
            "num_spines": num_spines,
            "switch_radix": switch_radix,
            "links_per_spine_pair": links_per_spine_pair,
        },
    )


def build_three_level_fattree(
    num_pods: int,
    *,
    switch_radix: int,
    attach_hosts: bool = True,
    name: str = "fattree-3l",
) -> BuiltTopology:
    """A three-level pod-based fat-tree (half-radix ``m = switch_radix/2``).

    Each of the ``num_pods`` pods holds ``m`` leaves and ``m`` aggregation
    switches in full bipartite wiring; aggregation switch ``a`` of every pod
    uplinks to the core group ``a*m .. a*m+m-1`` of the ``m**2`` core
    switches, so each core switch reaches every pod through one port (which
    caps ``num_pods`` at the radix). Leaves host ``m`` HCAs each.
    """
    _positive(num_pods, "num_pods")
    if switch_radix % 2:
        raise TopologyError(
            f"three-level fat-tree needs an even radix, got {switch_radix}"
        )
    m = switch_radix // 2
    if m < 1:
        raise TopologyError(f"radix {switch_radix} too small for a fat-tree")
    if num_pods > switch_radix:
        raise TopologyError(
            f"{num_pods} pods exceed the {switch_radix} ports of a core"
            " switch (one port per pod)"
        )

    topo = Topology(name)
    level: Dict[str, int] = {}
    pod: Dict[str, int] = {}
    pod_leaves: List[List[Switch]] = []
    pod_aggs: List[List[Switch]] = []
    for p in range(num_pods):
        leaves = [
            topo.add_switch(f"p{p}leaf{i}", switch_radix) for i in range(m)
        ]
        aggs = [topo.add_switch(f"p{p}agg{i}", switch_radix) for i in range(m)]
        for sw in leaves:
            level[sw.name] = 0
            pod[sw.name] = p
        for sw in aggs:
            level[sw.name] = 1
            pod[sw.name] = p
        pod_leaves.append(leaves)
        pod_aggs.append(aggs)
    cores = [topo.add_switch(f"core{j}", switch_radix) for j in range(m * m)]
    for sw in cores:
        level[sw.name] = 2
        pod[sw.name] = -1

    for p in range(num_pods):
        for i, leaf in enumerate(pod_leaves[p]):
            if attach_hosts:
                for j in range(m):
                    hca = topo.add_hca(f"p{p}l{i}h{j}")
                    topo.connect(leaf, 1 + j, hca, 1)
            # Full bipartite leaf <-> aggregation wiring within the pod.
            for a, agg in enumerate(pod_aggs[p]):
                topo.connect(leaf, m + 1 + a, agg, 1 + i)
        for a, agg in enumerate(pod_aggs[p]):
            for c in range(m):
                topo.connect(agg, m + 1 + c, cores[a * m + c], 1 + p)

    return BuiltTopology(
        topology=topo,
        level=level,
        pod=pod,
        roots=cores,
        params={"num_pods": num_pods, "switch_radix": switch_radix},
    )
