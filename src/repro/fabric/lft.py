"""Linear Forwarding Tables (LFTs) with 64-LID block accounting.

A switch forwards a packet by indexing its LFT with the destination LID to
obtain an output port. The subnet manager programs LFTs with
SubnSet(LinearForwardingTable) SMPs, each of which carries one **block of 64
consecutive LID entries** (paper sections V-C1 and VI-A). The number of SMPs
a reconfiguration needs is therefore the number of *blocks that changed*,
which is the core quantity behind Table I and equations (2)-(5).

The table is backed by a NumPy ``int16`` array so block diffing is a
vectorized reshape-and-compare rather than a Python loop (see DESIGN.md
performance notes).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.constants import (
    LFT_BLOCK_SIZE,
    LFT_DROP_PORT,
    LFT_UNSET,
    MAX_UNICAST_LID,
)
from repro.errors import TopologyError

__all__ = [
    "LinearForwardingTable",
    "lft_block_of",
    "blocks_covering",
    "min_blocks_for_lid_count",
]


def lft_block_of(lid: int) -> int:
    """Return the index of the 64-LID block containing *lid*."""
    if lid < 0:
        raise TopologyError(f"negative LID {lid}")
    return lid // LFT_BLOCK_SIZE


def blocks_covering(lids: Iterable[int]) -> List[int]:
    """Sorted unique block indices covering all *lids*."""
    return sorted({lft_block_of(lid) for lid in lids})


def min_blocks_for_lid_count(num_lids: int) -> int:
    """Minimum LFT blocks per switch when LIDs are packed from LID 1 upward.

    This is the "Min LFT Blocks/Switch" column of the paper's Table I: the
    amount of *consumed* LIDs rules the minimum number of blocks, assuming a
    dense assignment starting at LID 1 (LID 0 is reserved but shares block
    0 with LIDs 1-63, hence the +1).
    """
    if num_lids < 0:
        raise TopologyError("num_lids must be non-negative")
    if num_lids == 0:
        return 0
    topmost = num_lids  # LIDs 1..num_lids, LID 0 reserved.
    return lft_block_of(topmost) + 1


class LinearForwardingTable:
    """One switch's LID -> output-port table.

    Entries default to :data:`~repro.constants.LFT_UNSET` (255), which is
    also the IB "drop" port — an unprogrammed entry drops traffic exactly
    like the partially-static reconfiguration of section VI-C intends.
    """

    def __init__(self, top_lid: int = MAX_UNICAST_LID) -> None:
        if not 0 < top_lid <= MAX_UNICAST_LID:
            raise TopologyError(f"top_lid {top_lid} outside unicast space")
        n_blocks = lft_block_of(top_lid) + 1
        self._ports = np.full(n_blocks * LFT_BLOCK_SIZE, LFT_UNSET, dtype=np.int16)
        self._top_lid = top_lid

    # -- capacity ---------------------------------------------------------

    @property
    def top_lid(self) -> int:
        """Highest LID this table can currently hold."""
        return self._top_lid

    @property
    def num_blocks(self) -> int:
        """Number of 64-entry blocks currently allocated."""
        return len(self._ports) // LFT_BLOCK_SIZE

    def _ensure_capacity(self, lid: int) -> None:
        if lid >= len(self._ports):
            n_blocks = lft_block_of(lid) + 1
            grown = np.full(n_blocks * LFT_BLOCK_SIZE, LFT_UNSET, dtype=np.int16)
            grown[: len(self._ports)] = self._ports
            self._ports = grown
            self._top_lid = max(self._top_lid, lid)

    # -- entry access -----------------------------------------------------

    def get(self, lid: int) -> int:
        """Output port for *lid* (LFT_UNSET if not programmed)."""
        if lid < 0:
            raise TopologyError(f"negative LID {lid}")
        if lid >= len(self._ports):
            return LFT_UNSET
        return int(self._ports[lid])

    def set(self, lid: int, port: int) -> None:
        """Program *lid* to forward through *port*."""
        if lid <= 0 or lid > MAX_UNICAST_LID:
            raise TopologyError(f"LID {lid} outside unicast range")
        if not 0 <= port <= 255:
            raise TopologyError(f"port {port} outside 0-255")
        self._ensure_capacity(lid)
        self._ports[lid] = port

    def clear(self, lid: int) -> None:
        """Reset *lid*'s entry to unprogrammed (drop)."""
        if 0 <= lid < len(self._ports):
            self._ports[lid] = LFT_UNSET

    def drop(self, lid: int) -> None:
        """Force traffic for *lid* to be dropped (port 255, section VI-C)."""
        self.set(lid, LFT_DROP_PORT)

    def is_programmed(self, lid: int) -> bool:
        """True iff *lid* has a real (non-drop) output port."""
        return self.get(lid) != LFT_UNSET

    def swap(self, lid_a: int, lid_b: int) -> Tuple[int, ...]:
        """Swap the entries of two LIDs; return affected block indices.

        This is the primitive of the *prepopulated LIDs* reconfiguration
        (section V-C1): the migrating VM's LID entry is exchanged with the
        LID of the VF it will occupy at the destination. Returns the blocks
        whose contents actually changed — 0, 1 or 2 of them, which is the
        per-switch SMP count ``m'``.
        """
        a, b = self.get(lid_a), self.get(lid_b)
        if a == b:
            return ()
        self._ensure_capacity(max(lid_a, lid_b))
        self._ports[lid_a], self._ports[lid_b] = b, a
        ba, bb = lft_block_of(lid_a), lft_block_of(lid_b)
        return (ba,) if ba == bb else tuple(sorted((ba, bb)))

    def copy_entry(self, src_lid: int, dst_lid: int) -> Tuple[int, ...]:
        """Copy *src_lid*'s port into *dst_lid*; return changed blocks.

        Primitive of the *dynamic LID assignment* reconfiguration (section
        V-C2): the new VM LID inherits the forwarding port of the PF of its
        (destination) hypervisor. At most one block changes, hence m' = 1.
        """
        port = self.get(src_lid)
        if self.get(dst_lid) == port:
            return ()
        self._ensure_capacity(dst_lid)
        self._ports[dst_lid] = port
        return (lft_block_of(dst_lid),)

    # -- bulk / diffing ----------------------------------------------------

    def as_array(self) -> np.ndarray:
        """Read-only view of the underlying LID->port array."""
        view = self._ports.view()
        view.flags.writeable = False
        return view

    def clone(self) -> "LinearForwardingTable":
        """Deep copy of this table."""
        out = LinearForwardingTable(top_lid=self._top_lid)
        out._ports = self._ports.copy()
        return out

    def programmed_lids(self) -> np.ndarray:
        """Array of LIDs with a real output port programmed."""
        return np.nonzero(self._ports != LFT_UNSET)[0]

    def used_blocks(self) -> List[int]:
        """Block indices that contain at least one programmed entry."""
        mask = (self._ports != LFT_UNSET).reshape(-1, LFT_BLOCK_SIZE)
        return np.nonzero(mask.any(axis=1))[0].tolist()

    def diff_blocks(self, other: "LinearForwardingTable") -> List[int]:
        """Blocks whose contents differ between *self* and *other*.

        The length of the result is exactly the number of
        SubnSet(LinearForwardingTable) SMPs needed to turn *self* into
        *other* on a real switch.
        """
        a, b = self._ports, other._ports
        if len(a) != len(b):
            n = max(len(a), len(b))
            a = np.concatenate([a, np.full(n - len(a), LFT_UNSET, dtype=np.int16)])
            b = np.concatenate([b, np.full(n - len(b), LFT_UNSET, dtype=np.int16)])
        mask = (a != b).reshape(-1, LFT_BLOCK_SIZE)
        return np.nonzero(mask.any(axis=1))[0].tolist()

    def load_block(self, block: int, entries: np.ndarray) -> None:
        """Overwrite one 64-entry block (what a SubnSet LFT SMP does)."""
        if entries.shape != (LFT_BLOCK_SIZE,):
            raise TopologyError(
                f"LFT block payload must have {LFT_BLOCK_SIZE} entries"
            )
        self._ensure_capacity((block + 1) * LFT_BLOCK_SIZE - 1)
        self._ports[block * LFT_BLOCK_SIZE : (block + 1) * LFT_BLOCK_SIZE] = entries

    def get_block(self, block: int) -> np.ndarray:
        """Copy of one 64-entry block (what a SubnGet LFT SMP returns)."""
        self._ensure_capacity((block + 1) * LFT_BLOCK_SIZE - 1)
        return self._ports[
            block * LFT_BLOCK_SIZE : (block + 1) * LFT_BLOCK_SIZE
        ].copy()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearForwardingTable):
            return NotImplemented
        return not self.diff_blocks(other)

    def __hash__(self) -> int:  # tables are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = len(self.programmed_lids())
        return f"<LFT {n} programmed LIDs, {self.num_blocks} blocks>"
