"""Preset topologies: the paper's four fat-trees and scaled-down twins.

``paper_fattree(nodes)`` reconstructs the exact instances behind Fig. 7 and
Table I (36-port switches). ``scaled_fattree(profile)`` provides structurally
identical but smaller instances used as benchmark defaults so a
pytest-benchmark run stays interactive; set ``REPRO_PAPER_SCALE=1`` (read by
the benchmarks, not here) to use the full-size ones.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import TopologyError
from repro.fabric.builders.fattree import (
    BuiltTopology,
    build_three_level_fattree,
    build_two_level_fattree,
)

__all__ = [
    "PAPER_FATTREE_NODES",
    "paper_fattree",
    "scaled_fattree",
    "SCALED_PROFILES",
]

#: The node counts of the paper's four simulated fat-trees (Fig. 7, Table I).
PAPER_FATTREE_NODES: Tuple[int, ...] = (324, 648, 5832, 11664)

#: Expected (switches, consumed LIDs) per paper Table I, used by tests.
PAPER_TABLE1_SHAPE: Dict[int, Tuple[int, int]] = {
    324: (36, 360),
    648: (54, 702),
    5832: (972, 6804),
    11664: (1620, 13284),
}


def paper_fattree(nodes: int, *, attach_hosts: bool = True) -> BuiltTopology:
    """Build one of the paper's four fat-trees by node count."""
    if nodes == 324:
        return build_two_level_fattree(
            num_leaves=18,
            hosts_per_leaf=18,
            num_spines=18,
            switch_radix=36,
            attach_hosts=attach_hosts,
            name="paper-ft-324",
        )
    if nodes == 648:
        return build_two_level_fattree(
            num_leaves=36,
            hosts_per_leaf=18,
            num_spines=18,
            switch_radix=36,
            attach_hosts=attach_hosts,
            name="paper-ft-648",
        )
    if nodes == 5832:
        return build_three_level_fattree(
            num_pods=18, switch_radix=36, attach_hosts=attach_hosts,
            name="paper-ft-5832",
        )
    if nodes == 11664:
        return build_three_level_fattree(
            num_pods=36, switch_radix=36, attach_hosts=attach_hosts,
            name="paper-ft-11664",
        )
    raise TopologyError(
        f"no paper fat-tree with {nodes} nodes; choose {PAPER_FATTREE_NODES}"
    )


#: Scaled-down structural twins: name -> builder kwargs. The two 2-level
#: profiles shrink the paper's 324/648-node instances by 1/3 radix; the two
#: 3-level profiles shrink 5832/11664 to radix 12 (half-radix 6).
SCALED_PROFILES: Dict[str, Dict[str, int]] = {
    "2l-small": {"levels": 2, "num_leaves": 6, "hosts_per_leaf": 6, "num_spines": 6, "switch_radix": 12},
    "2l-wide": {"levels": 2, "num_leaves": 12, "hosts_per_leaf": 6, "num_spines": 6, "switch_radix": 12},
    "3l-small": {"levels": 3, "num_pods": 6, "switch_radix": 12},
    "3l-wide": {"levels": 3, "num_pods": 12, "switch_radix": 12},
}

#: Pairs each scaled profile with the paper instance it mimics.
SCALED_TO_PAPER: Dict[str, int] = {
    "2l-small": 324,
    "2l-wide": 648,
    "3l-small": 5832,
    "3l-wide": 11664,
}


def scaled_fattree(profile: str, *, attach_hosts: bool = True) -> BuiltTopology:
    """Build a scaled-down structural twin of a paper fat-tree."""
    try:
        params = dict(SCALED_PROFILES[profile])
    except KeyError:
        raise TopologyError(
            f"unknown profile {profile!r}; choose {sorted(SCALED_PROFILES)}"
        ) from None
    levels = params.pop("levels")
    if levels == 2:
        return build_two_level_fattree(
            attach_hosts=attach_hosts, name=f"scaled-{profile}", **params
        )
    return build_three_level_fattree(
        attach_hosts=attach_hosts, name=f"scaled-{profile}", **params
    )
