"""The subnet topology graph.

Holds every node and cable of one IB subnet, maintains the LID -> port
binding registry (several LIDs may bind to one physical HCA port — that is
exactly what the vSwitch architecture does), and exports a compact
integer-indexed view of the switch graph for the routing engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import TopologyError
from repro.fabric.link import Link
from repro.fabric.node import HCA, Node, Port, Switch

__all__ = ["Topology", "TopologyMutation", "Terminal", "SwitchFabricView"]

#: Mutation kinds :class:`TopologyMutation` describes (the runtime
#: topology-change vocabulary shared by the SM, the trap pipeline, the
#: HA journal and the chaos ``rewire`` knob).
MUTATION_KINDS = (
    "add_link",
    "remove_link",
    "restore_link",
    "add_switch",
    "remove_switch",
)


@dataclass(frozen=True)
class TopologyMutation:
    """One planned runtime topology change, as plain serializable data.

    ``a``/``port_a`` and ``b``/``port_b`` name the cable endpoints for the
    link kinds; for the switch kinds ``a`` is the switch name and
    ``cables`` lists ``(local_port, peer_name, peer_port)`` triples to
    plug while adding. ``level`` optionally records the new switch's tree
    level so level-aware engines (ftree, Up*/Down*) keep total metadata.
    The dict round-trip (:meth:`as_dict` / :meth:`from_dict`) is what the
    HA journal replicates to standbys.
    """

    kind: str
    a: str = ""
    port_a: int = -1
    b: str = ""
    port_b: int = -1
    num_ports: int = 0
    level: int = -1
    latency: float = 100e-9
    cables: Tuple[Tuple[int, str, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise TopologyError(
                f"unknown mutation kind {self.kind!r};"
                f" choose one of {MUTATION_KINDS}"
            )
        if isinstance(self.cables, list):  # tolerate list literals
            object.__setattr__(
                self, "cables", tuple(tuple(c) for c in self.cables)
            )

    def as_dict(self) -> Dict[str, Any]:
        """Wire/journal form (plain JSON-able types only)."""
        return {
            "kind": self.kind,
            "a": self.a,
            "port_a": self.port_a,
            "b": self.b,
            "port_b": self.port_b,
            "num_ports": self.num_ports,
            "level": self.level,
            "latency": self.latency,
            "cables": [list(c) for c in self.cables],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopologyMutation":
        """Rebuild a mutation from its :meth:`as_dict` form."""
        return cls(
            kind=str(data["kind"]),
            a=str(data.get("a", "")),
            port_a=int(data.get("port_a", -1)),
            b=str(data.get("b", "")),
            port_b=int(data.get("port_b", -1)),
            num_ports=int(data.get("num_ports", 0)),
            level=int(data.get("level", -1)),
            latency=float(data.get("latency", 100e-9)),
            cables=tuple(
                (int(p), str(peer), int(pp))
                for p, peer, pp in data.get("cables", [])
            ),
        )

    def describe(self) -> str:
        """Compact human form for logs and chaos reports."""
        if self.kind in ("add_link", "remove_link", "restore_link"):
            return (
                f"{self.kind} {self.a}:{self.port_a}"
                f"<->{self.b}:{self.port_b}"
            )
        if self.kind == "add_switch":
            return f"add_switch {self.a} ({len(self.cables)} cables)"
        return f"remove_switch {self.a}"


class Terminal(NamedTuple):
    """A routable endpoint LID and where it attaches to the switch fabric.

    ``switch_index``/``switch_port`` give the leaf switch (dense index) and
    the port *on that switch* through which the LID is reached. Multiple
    terminals may share the same attachment point — e.g. all the VF LIDs of
    one vSwitch-enabled hypervisor.
    """

    lid: int
    switch_index: int
    switch_port: int
    hca_port: Port


@dataclass(frozen=True)
class SwitchFabricView:
    """Compact CSR adjacency of the switch-to-switch graph.

    ``indptr``/``peer``/``out_port`` encode, for switch ``i``, its switch
    neighbours ``peer[indptr[i]:indptr[i+1]]`` and the local output port
    leading to each. Routing engines work exclusively on this view so the
    hot loops touch integer arrays, never the object graph.
    """

    num_switches: int
    indptr: np.ndarray
    peer: np.ndarray
    out_port: np.ndarray
    #: Port number on the *peer* switch for the same cable (reverse port).
    in_port: np.ndarray
    link_latency: np.ndarray

    def neighbors(self, switch_index: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(peer_switch_index, local_out_port)`` pairs."""
        lo, hi = self.indptr[switch_index], self.indptr[switch_index + 1]
        for k in range(lo, hi):
            yield int(self.peer[k]), int(self.out_port[k])

    def degree(self, switch_index: int) -> int:
        """Number of inter-switch cables on this switch."""
        return int(self.indptr[switch_index + 1] - self.indptr[switch_index])


class Topology:
    """A mutable IB subnet: nodes, links, and the LID binding registry."""

    def __init__(self, name: str = "subnet") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._switches: List[Switch] = []
        self._hcas: List[HCA] = []
        self._links: List[Link] = []
        self._lid_to_port: Dict[int, Port] = {}
        self._fabric_view: Optional[SwitchFabricView] = None
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic switch-graph version.

        Bumped by every mutation that can change the switch-to-switch graph
        (adding a switch, cabling two switches, removing a switch, or an
        out-of-band :meth:`invalidate_fabric_view`). LID churn and HCA
        cabling do NOT bump it — that is what lets the routing caches stay
        warm across VM boot/stop/migration (see
        :class:`repro.sm.routing.cache.RoutingState`).
        """
        return self._version

    def _touch_switch_graph(self) -> None:
        self._fabric_view = None
        self._version += 1

    # -- construction -----------------------------------------------------

    def add_switch(self, name: str, num_ports: int) -> Switch:
        """Create and register a switch."""
        self._check_fresh_name(name)
        sw = Switch(name, num_ports)
        sw.index = len(self._switches)
        self._switches.append(sw)
        self._nodes[name] = sw
        self._touch_switch_graph()
        return sw

    def add_hca(self, name: str, num_ports: int = 1) -> HCA:
        """Create and register an HCA."""
        self._check_fresh_name(name)
        hca = HCA(name, num_ports)
        hca.index = len(self._hcas)
        self._hcas.append(hca)
        self._nodes[name] = hca
        return hca

    def connect(
        self,
        a: Union[Node, str],
        port_a: int,
        b: Union[Node, str],
        port_b: int,
        *,
        latency: float = 100e-9,
    ) -> Link:
        """Cable port *port_a* of *a* to port *port_b* of *b*."""
        node_a, node_b = self._resolve(a), self._resolve(b)
        link = Link(node_a.port(port_a), node_b.port(port_b), latency=latency)
        self._links.append(link)
        if isinstance(node_a, Switch) and isinstance(node_b, Switch):
            # Only switch-to-switch cables appear in the fabric view; HCA
            # cabling (VM churn) leaves the switch graph — and hence every
            # version-keyed routing cache — untouched.
            self._touch_switch_graph()
        return link

    def add_link(
        self,
        a: Union[Node, str],
        port_a: int,
        b: Union[Node, str],
        port_b: int,
        *,
        latency: float = 100e-9,
    ) -> Link:
        """Runtime-add a cable (mutation-first alias of :meth:`connect`).

        Switch-to-switch cables bump :attr:`version` exactly once; record
        the matching
        :meth:`repro.sm.routing.cache.RoutingState.note_link_addition`
        right after this call to keep the repair chain unbroken.
        """
        return self.connect(a, port_a, b, port_b, latency=latency)

    def remove_link(self, link: Link) -> Link:
        """Runtime-remove a cable: unplug it AND drop it from the registry.

        Unlike a raw ``link.disconnect()`` (the out-of-band failure path),
        this leaves no dead :class:`~repro.fabric.link.Link` behind in
        :attr:`links`, so a removed cable cannot be re-picked by chaos
        schedules or partition checks. Switch-to-switch cables bump
        :attr:`version` exactly once; HCA cables leave the switch graph —
        and every version-keyed routing cache — untouched.
        """
        if link not in self._links:
            raise TopologyError("link is not part of this topology")
        end_a, end_b = link.ends
        fabric_cable = isinstance(end_a.node, Switch) and isinstance(
            end_b.node, Switch
        )
        link.disconnect()
        self._links.remove(link)
        if fabric_cable:
            self._touch_switch_graph()
        return link

    def restore_link(self, link: Link, *, latency: Optional[float] = None) -> Link:
        """Re-plug a previously removed cable at its original ports.

        *link* is the object :meth:`remove_link` returned (it remembers
        its end ports). Returns the fresh :class:`~repro.fabric.link.Link`
        now cabling those ports.
        """
        end_a, end_b = link.ends
        return self.connect(
            end_a.node,
            end_a.num,
            end_b.node,
            end_b.num,
            latency=link.latency if latency is None else latency,
        )

    def auto_connect(self, a: Union[Node, str], b: Union[Node, str], **kw) -> Link:
        """Cable the first free port of *a* to the first free port of *b*."""
        node_a, node_b = self._resolve(a), self._resolve(b)
        pa = next(node_a.free_ports(), None)
        pb = next(node_b.free_ports(), None)
        if pa is None or pb is None:
            raise TopologyError(
                f"no free port on {node_a.name!r} or {node_b.name!r}"
            )
        return self.connect(node_a, pa.num, node_b, pb.num, **kw)

    def remove_switch(self, ref: Union[Node, str]) -> Switch:
        """Remove a failed switch from the subnet.

        All its cables are unplugged and the remaining switches are
        re-indexed densely. Only switches with no HCAs attached (spines,
        aggregation, core) can be removed — a dead leaf strands its hosts,
        which must be handled at the virtualization layer instead. The
        switch's own LID (if bound) must be released by the caller first.
        """
        node = self._resolve(ref)
        if not isinstance(node, Switch):
            raise TopologyError(f"{node.name!r} is not a switch")
        if node.attached_hcas():
            raise TopologyError(
                f"{node.name!r} still has HCAs attached; evacuate them first"
            )
        if node.lid is not None and node.lid in self._lid_to_port:
            raise TopologyError(
                f"{node.name!r} still holds LID {node.lid}; release it first"
            )
        for port in list(node.connected_ports()):
            link = port.link
            assert link is not None
            link.disconnect()
            self._links.remove(link)
        self._switches.remove(node)
        del self._nodes[node.name]
        for idx, sw in enumerate(self._switches):
            sw.index = idx
        node.index = -1
        node.lid = None
        # Clean detach: a removed switch keeps no forwarding or counter
        # state, so a later re-add (same name or same hardware) starts
        # from scratch and round-trips to byte-identical routing.
        node.reset_forwarding()
        self._touch_switch_graph()
        return node

    def _check_fresh_name(self, name: str) -> None:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name {name!r}")

    def _resolve(self, ref: Union[Node, str]) -> Node:
        if isinstance(ref, Node):
            return ref
        try:
            return self._nodes[ref]
        except KeyError:
            raise TopologyError(f"unknown node {ref!r}") from None

    # -- queries ----------------------------------------------------------

    @property
    def switches(self) -> List[Switch]:
        """All switches, in dense-index order."""
        return list(self._switches)

    @property
    def hcas(self) -> List[HCA]:
        """All HCAs, in dense-index order."""
        return list(self._hcas)

    @property
    def links(self) -> List[Link]:
        """All cables."""
        return list(self._links)

    @property
    def num_switches(self) -> int:
        """Number of switches (the paper's ``n``)."""
        return len(self._switches)

    @property
    def num_hcas(self) -> int:
        """Number of HCAs."""
        return len(self._hcas)

    def node(self, name: str) -> Node:
        """Look a node up by name."""
        return self._resolve(name)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def switch_by_index(self, index: int) -> Switch:
        """Dense index -> switch."""
        try:
            return self._switches[index]
        except IndexError:
            raise TopologyError(f"no switch with index {index}") from None

    def leaf_switches(self) -> List[Switch]:
        """Switches with at least one HCA attached."""
        return [sw for sw in self._switches if sw.is_leaf]

    # -- LID registry -----------------------------------------------------

    def bind_lid(self, lid: int, port: Port) -> None:
        """Register that *lid* is reachable at *port*.

        Several LIDs may bind to the same HCA port (vSwitch), but one LID
        binds to exactly one port.
        """
        if lid in self._lid_to_port:
            raise TopologyError(f"LID {lid} already bound to a port")
        self._lid_to_port[lid] = port

    def unbind_lid(self, lid: int) -> None:
        """Remove *lid* from the registry."""
        if lid not in self._lid_to_port:
            raise TopologyError(f"LID {lid} is not bound")
        del self._lid_to_port[lid]

    def rebind_lid(self, lid: int, port: Port) -> None:
        """Atomically move *lid* to a new port (a migrated VM's LID)."""
        if lid not in self._lid_to_port:
            raise TopologyError(f"LID {lid} is not bound")
        self._lid_to_port[lid] = port

    def port_of_lid(self, lid: int) -> Optional[Port]:
        """The port a LID is bound to, or None."""
        return self._lid_to_port.get(lid)

    def bound_lids(self) -> List[int]:
        """All registered LIDs, ascending."""
        return sorted(self._lid_to_port)

    @property
    def num_lids(self) -> int:
        """Number of consumed LIDs (the paper's Table I "LIDs" column)."""
        return len(self._lid_to_port)

    # -- routing-engine views ----------------------------------------------

    def fabric_view(self) -> SwitchFabricView:
        """CSR view of the switch graph (cached until topology mutates)."""
        if self._fabric_view is None:
            self._fabric_view = self._build_fabric_view()
        return self._fabric_view

    def invalidate_fabric_view(self) -> None:
        """Drop the cached view after an out-of-band mutation (e.g. a cable
        failure disconnected through the Link object directly). Also bumps
        :attr:`version`, since the switch graph may have changed."""
        self._touch_switch_graph()

    def _build_fabric_view(self) -> SwitchFabricView:
        n = len(self._switches)
        adj: List[List[Tuple[int, int, int, float]]] = [[] for _ in range(n)]
        for sw in self._switches:
            for port in sw.connected_ports():
                peer = port.remote
                assert peer is not None and port.link is not None
                if isinstance(peer.node, Switch):
                    adj[sw.index].append(
                        (peer.node.index, port.num, peer.num, port.link.latency)
                    )
        counts = [len(a) for a in adj]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        peer = np.empty(total, dtype=np.int32)
        out_port = np.empty(total, dtype=np.int32)
        in_port = np.empty(total, dtype=np.int32)
        latency = np.empty(total, dtype=np.float64)
        pos = 0
        for a in adj:
            for pr, op, ip, lat in a:
                peer[pos], out_port[pos], in_port[pos] = pr, op, ip
                latency[pos] = lat
                pos += 1
        return SwitchFabricView(
            num_switches=n,
            indptr=indptr,
            peer=peer,
            out_port=out_port,
            in_port=in_port,
            link_latency=latency,
        )

    def terminals(self) -> List[Terminal]:
        """Every bound endpoint LID with its switch attachment point.

        Switch self-LIDs are excluded — they are handled separately because
        they terminate *at* a switch rather than through a switch port.
        """
        out: List[Terminal] = []
        for lid in sorted(self._lid_to_port):
            port = self._lid_to_port[lid]
            if isinstance(port.node, Switch) and port.num == 0:
                continue  # switch management LID
            attach = port.remote
            if attach is None or not isinstance(attach.node, Switch):
                raise TopologyError(
                    f"LID {lid} bound to {port!r} which is not attached to a"
                    " switch; cannot route"
                )
            out.append(
                Terminal(
                    lid=lid,
                    switch_index=attach.node.index,
                    switch_port=attach.num,
                    hca_port=port,
                )
            )
        return out

    def switch_lids(self) -> Dict[int, int]:
        """Mapping LID -> switch dense index for switch self-LIDs."""
        out: Dict[int, int] = {}
        for lid, port in self._lid_to_port.items():
            if isinstance(port.node, Switch) and port.num == 0:
                out[lid] = port.node.index
        return out

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Sanity-check the physical graph.

        Raises :class:`TopologyError` on dangling HCAs, switch islands, or
        LIDs bound to unplugged ports.
        """
        for hca in self._hcas:
            if not any(p.is_connected for p in hca.ports.values()):
                raise TopologyError(f"HCA {hca.name!r} has no cable")
        if self._switches:
            seen = {0}
            stack = [0]
            view = self.fabric_view()
            while stack:
                cur = stack.pop()
                for nb, _ in view.neighbors(cur):
                    if nb not in seen:
                        seen.add(nb)
                        stack.append(nb)
            if len(seen) != len(self._switches):
                missing = [
                    sw.name for sw in self._switches if sw.index not in seen
                ]
                raise TopologyError(
                    f"switch fabric is disconnected; unreachable: {missing[:5]}"
                )
        for lid, port in self._lid_to_port.items():
            if isinstance(port.node, Switch) and port.num == 0:
                continue
            if not port.is_connected:
                raise TopologyError(f"LID {lid} bound to unplugged {port!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Topology {self.name!r}: {self.num_switches} switches,"
            f" {self.num_hcas} HCAs, {len(self._links)} links,"
            f" {self.num_lids} LIDs>"
        )
