"""Topology (de)serialization to a JSON-friendly document.

Lets a constructed subnet — including LID bindings, switch LFT contents and
fat-tree metadata — be saved and reloaded, so large instances can be built
once and reused across benchmark runs, or captured fabrics replayed in
tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import TopologyError
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.node import Switch
from repro.fabric.topology import Topology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology"]

_FORMAT_VERSION = 1


def topology_to_dict(
    topology: Topology, *, built: Optional[BuiltTopology] = None
) -> Dict[str, Any]:
    """Serialize *topology* (and optional builder metadata) to a dict."""
    doc: Dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "name": topology.name,
        "switches": [
            {"name": sw.name, "ports": sw.num_ports, "lid": sw.lid}
            for sw in topology.switches
        ],
        "hcas": [
            {
                "name": h.name,
                "ports": h.num_ports,
                "lid": h.port(1).lid,
            }
            for h in topology.hcas
        ],
        "links": [
            [
                link.a.node.name,
                link.a.num,
                link.b.node.name,
                link.b.num,
                link.latency,
            ]
            for link in topology.links
        ],
        "lids": {
            str(lid): [
                topology.port_of_lid(lid).node.name,
                topology.port_of_lid(lid).num,
            ]
            for lid in topology.bound_lids()
        },
        "lfts": {
            sw.name: {
                str(int(lid)): int(sw.lft.get(int(lid)))
                for lid in sw.lft.programmed_lids()
            }
            for sw in topology.switches
        },
    }
    if built is not None:
        doc["built"] = {
            "level": dict(built.level),
            "pod": dict(built.pod),
            "roots": [sw.name for sw in built.roots],
            "params": dict(built.params),
        }
    return doc


def topology_from_dict(doc: Dict[str, Any]) -> BuiltTopology:
    """Rebuild a topology (wrapped in a BuiltTopology) from a dict."""
    if doc.get("format") != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format {doc.get('format')!r}"
        )
    topo = Topology(doc["name"])
    for sw_doc in doc["switches"]:
        sw = topo.add_switch(sw_doc["name"], sw_doc["ports"])
        sw.lid = sw_doc.get("lid")
    for hca_doc in doc["hcas"]:
        hca = topo.add_hca(hca_doc["name"], hca_doc["ports"])
        hca.port(1).lid = hca_doc.get("lid")
    for a, pa, b, pb, latency in doc["links"]:
        topo.connect(a, pa, b, pb, latency=latency)
    for lid_str, (node_name, port_num) in doc.get("lids", {}).items():
        node = topo.node(node_name)
        port = (
            node.management_port
            if isinstance(node, Switch) and port_num == 0
            else node.port(port_num)
        )
        topo.bind_lid(int(lid_str), port)
    for sw_name, entries in doc.get("lfts", {}).items():
        sw = topo.node(sw_name)
        if not isinstance(sw, Switch):
            raise TopologyError(f"LFT entry for non-switch {sw_name!r}")
        for lid_str, out_port in entries.items():
            sw.lft.set(int(lid_str), out_port)

    built = BuiltTopology(topology=topo)
    meta = doc.get("built")
    if meta:
        built.level = dict(meta.get("level", {}))
        built.pod = dict(meta.get("pod", {}))
        built.roots = [topo.node(name) for name in meta.get("roots", [])]
        built.params = dict(meta.get("params", {}))
    return built


def save_topology(
    path: str, topology: Topology, *, built: Optional[BuiltTopology] = None
) -> None:
    """Write the topology document as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(topology_to_dict(topology, built=built), fh)


def load_topology(path: str) -> BuiltTopology:
    """Load a topology document from *path*."""
    with open(path, encoding="utf-8") as fh:
        return topology_from_dict(json.load(fh))
