"""Physical fabric elements: nodes, ports and queue pairs.

The fabric layer models the *physical* subnet only — switches, host channel
adapters (HCAs) and their ports. SR-IOV functions (PF/VFs) are layered on
top in :mod:`repro.sriov`, and the vSwitch abstraction of the paper lives
there too.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.constants import QP0, QP1
from repro.errors import TopologyError
from repro.fabric.addressing import GUID
from repro.fabric.lft import LinearForwardingTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.link import Link

__all__ = [
    "NodeType",
    "Port",
    "Node",
    "Switch",
    "HCA",
    "QueuePair",
    "PortCounters",
    "PMA_COUNTER_WRAP",
]

#: PMA counters are 32-bit on the wire (IBA 16.1.3.5); reads wrap modulo
#: this and the PerfManager reconstructs monotonic totals from deltas.
PMA_COUNTER_WRAP = 2**32


class NodeType(enum.Enum):
    """IB node types as reported in NodeInfo."""

    SWITCH = "switch"
    CA = "ca"  # channel adapter (an HCA)


class QueuePair:
    """A Queue Pair — the virtual communication port of IB consumers.

    QP0 and QP1 are special: they carry subnet management (SMPs) and general
    management (GMPs) traffic respectively. The Shared Port architecture's
    inability to host an SM inside a VM stems from VFs being denied QP0
    access (paper section IV-A); we model ownership and the permission bit
    explicitly so that rule is testable.
    """

    def __init__(self, qpn: int, *, owner: str, smi_allowed: bool = True) -> None:
        if qpn < 0:
            raise TopologyError(f"negative QPN {qpn}")
        self.qpn = qpn
        self.owner = owner
        #: Whether SMPs presented to this QP are accepted (False on VFs'
        #: proxied QP0 under Shared Port).
        self.smi_allowed = smi_allowed

    @property
    def is_management(self) -> bool:
        """True for the special QP0/QP1 pair."""
        return self.qpn in (QP0, QP1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<QP{self.qpn} owner={self.owner!r} smi={self.smi_allowed}>"


class Port:
    """One physical port of a node.

    Switch external ports carry no LID of their own (the switch LID lives on
    port 0); HCA ports hold the LID(s) assigned by the SM.
    """

    def __init__(self, node: "Node", num: int) -> None:
        self.node = node
        self.num = num
        self.link: Optional["Link"] = None
        #: LID assigned by the SM (None until assigned). For switches only
        #: port 0 carries a LID.
        self.lid: Optional[int] = None

    @property
    def is_connected(self) -> bool:
        """True iff a link is plugged into this port."""
        return self.link is not None

    @property
    def remote(self) -> Optional["Port"]:
        """The port at the other end of the link, if connected."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Port {self.node.name}:{self.num}>"


class Node:
    """Base class for switches and HCAs."""

    _ids = itertools.count(1)

    def __init__(self, name: str, node_type: NodeType, num_ports: int) -> None:
        if num_ports < 1:
            raise TopologyError(f"node {name!r} needs at least one port")
        self.name = name
        self.node_type = node_type
        self.node_guid: Optional[GUID] = None
        #: Stable dense index assigned by the Topology on registration; used
        #: by routing engines to index arrays.
        self.index: int = -1
        # Port numbering follows IB convention: 1..num_ports are external.
        self.ports: Dict[int, Port] = {
            num: Port(self, num) for num in range(1, num_ports + 1)
        }
        #: PMA-style per-port counters (created on first touch). Every
        #: node — switch *and* HCA — carries them; port 0 (the switch
        #: management port) is valid on switches only.
        self.counters: Dict[int, "PortCounters"] = {}

    def port_counters(self, port: int) -> "PortCounters":
        """Counters for one port (created on first touch)."""
        low = 0 if self.is_switch else 1
        if not low <= port <= self.num_ports:
            raise TopologyError(f"{self.name!r} has no port {port}")
        return self.counters.setdefault(port, PortCounters())

    @property
    def num_ports(self) -> int:
        """Number of external ports."""
        return len(self.ports)

    def port(self, num: int) -> Port:
        """Return external port *num* (1-based), raising on bad numbers."""
        try:
            return self.ports[num]
        except KeyError:
            raise TopologyError(
                f"{self.name!r} has no port {num} (1..{self.num_ports})"
            ) from None

    def connected_ports(self) -> Iterator[Port]:
        """Iterate over ports with a link attached."""
        return (p for p in self.ports.values() if p.is_connected)

    def free_ports(self) -> Iterator[Port]:
        """Iterate over unconnected ports."""
        return (p for p in self.ports.values() if not p.is_connected)

    @property
    def is_switch(self) -> bool:
        """True for switches."""
        return self.node_type is NodeType.SWITCH

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class PortCounters:
    """PMA-style per-port traffic counters (a subset of IBA PortCounters).

    Semantics follow the IBA PortCounters attribute: ``xmit_data`` /
    ``rcv_data`` count octets, ``xmit_wait`` counts the ticks (modelled as
    nanoseconds) a packet at the head of the transmit queue spent blocked
    on flow-control credits — the congestion signal — and discards are
    split by cause so HOQ-lifetime drops (resolved deadlocks, section
    VI-C) are distinguishable from unroutable/blackholed traffic. The
    live fields are unbounded Python ints; :meth:`pma_view` is the
    *on-the-wire* read, wrapped to 32 bits like real hardware counters.
    """

    __slots__ = (
        "xmit_packets",
        "rcv_packets",
        "xmit_data",
        "rcv_data",
        "xmit_wait",
        "hoq_discards",
        "unroutable_discards",
        "symbol_errors",
    )

    #: Counter names exposed by :meth:`as_dict` / :meth:`pma_view`, in
    #: exposition order.
    FIELDS = (
        "xmit_packets",
        "rcv_packets",
        "xmit_data",
        "rcv_data",
        "xmit_wait",
        "xmit_discards",
        "hoq_discards",
        "unroutable_discards",
        "symbol_errors",
    )

    def __init__(self) -> None:
        self.xmit_packets = 0
        self.rcv_packets = 0
        self.xmit_data = 0
        self.rcv_data = 0
        self.xmit_wait = 0
        self.hoq_discards = 0
        self.unroutable_discards = 0
        self.symbol_errors = 0

    @property
    def xmit_discards(self) -> int:
        """Total transmit discards (all causes), as IBA PortXmitDiscards."""
        return self.hoq_discards + self.unroutable_discards

    def add_wait(self, seconds: float) -> None:
        """Accumulate credit-wait time into ``xmit_wait`` (1 tick = 1 ns)."""
        if seconds > 0:
            self.xmit_wait += int(round(seconds * 1e9))

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (unwrapped totals)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def pma_view(self) -> Dict[str, int]:
        """The 32-bit wrapped values a PMA GET returns off the wire."""
        return {
            name: getattr(self, name) % PMA_COUNTER_WRAP
            for name in self.FIELDS
        }

    def reset(self) -> None:
        """Clear all counters (PortCounters set with reset bits)."""
        self.xmit_packets = 0
        self.rcv_packets = 0
        self.xmit_data = 0
        self.rcv_data = 0
        self.xmit_wait = 0
        self.hoq_discards = 0
        self.unroutable_discards = 0
        self.symbol_errors = 0


class Switch(Node):
    """A crossbar switch with a Linear Forwarding Table.

    The management port (port 0) holds the switch's own LID. The LFT maps
    destination LIDs to output ports and is programmed by the SM in 64-LID
    blocks. ``counters`` holds PMA-style per-port traffic counters,
    incremented by the data-plane simulator and queryable through the
    performance manager.
    """

    def __init__(self, name: str, num_ports: int) -> None:
        super().__init__(name, NodeType.SWITCH, num_ports)
        self.management_port = Port(self, 0)
        self.lft = LinearForwardingTable(top_lid=63)

    @property
    def lid(self) -> Optional[int]:
        """The switch's LID (lives on management port 0)."""
        return self.management_port.lid

    @lid.setter
    def lid(self, value: Optional[int]) -> None:
        self.management_port.lid = value

    def route(self, dest_lid: int) -> int:
        """Output port for *dest_lid* per the current LFT."""
        return self.lft.get(dest_lid)

    def reset_forwarding(self) -> None:
        """Drop all forwarding and counter state (clean detach).

        Called when the switch leaves a subnet so stale LFT entries or
        PMA counters can never leak into a later re-add of the same
        hardware.
        """
        self.lft = LinearForwardingTable(top_lid=63)
        for counters in self.counters.values():
            counters.reset()

    def attached_hcas(self) -> List["HCA"]:
        """HCAs plugged directly into this switch (defines a leaf switch)."""
        out: List[HCA] = []
        for port in self.connected_ports():
            peer = port.remote
            assert peer is not None
            if isinstance(peer.node, HCA):
                out.append(peer.node)
        return out

    @property
    def is_leaf(self) -> bool:
        """True iff at least one HCA hangs off this switch."""
        return bool(self.attached_hcas())


class HCA(Node):
    """A host channel adapter (one physical port by default).

    The HCA owns the management QPs; SR-IOV function semantics (who may use
    QP0, how QP space is carved up) are modelled by :mod:`repro.sriov`.
    """

    def __init__(self, name: str, num_ports: int = 1) -> None:
        super().__init__(name, NodeType.CA, num_ports)
        self.qp0 = QueuePair(QP0, owner=name, smi_allowed=True)
        self.qp1 = QueuePair(QP1, owner=name, smi_allowed=True)
        self._next_qpn = 2

    @property
    def lid(self) -> Optional[int]:
        """LID of the primary port (port 1)."""
        return self.port(1).lid

    @lid.setter
    def lid(self, value: Optional[int]) -> None:
        self.port(1).lid = value

    def create_qp(self, *, owner: Optional[str] = None) -> QueuePair:
        """Allocate a consumer QP from this HCA's QP space."""
        qp = QueuePair(self._next_qpn, owner=owner or self.name)
        self._next_qpn += 1
        return qp

    def uplink_switch(self) -> Optional[Switch]:
        """The switch this HCA's primary port connects to, if any."""
        peer = self.port(1).remote
        if peer is not None and isinstance(peer.node, Switch):
            return peer.node
        return None
