"""Physical InfiniBand subnet model: addressing, nodes, links, LFTs, topologies."""

from repro.fabric.addressing import (
    DEFAULT_SUBNET_PREFIX,
    GID,
    GuidAllocator,
    LidAllocator,
    make_gid,
    theoretical_hypervisor_limit,
    theoretical_vm_limit,
)
from repro.fabric.lft import (
    LinearForwardingTable,
    blocks_covering,
    lft_block_of,
    min_blocks_for_lid_count,
)
from repro.fabric.link import Link
from repro.fabric.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.fabric.node import HCA, Node, NodeType, Port, PortCounters, QueuePair, Switch
from repro.fabric.topology import SwitchFabricView, Terminal, Topology

__all__ = [
    "GID",
    "GuidAllocator",
    "LidAllocator",
    "make_gid",
    "DEFAULT_SUBNET_PREFIX",
    "theoretical_hypervisor_limit",
    "theoretical_vm_limit",
    "LinearForwardingTable",
    "lft_block_of",
    "blocks_covering",
    "min_blocks_for_lid_count",
    "Link",
    "topology_to_dict",
    "topology_from_dict",
    "save_topology",
    "load_topology",
    "HCA",
    "Node",
    "NodeType",
    "Port",
    "QueuePair",
    "PortCounters",
    "Switch",
    "Topology",
    "Terminal",
    "SwitchFabricView",
]
