"""Vectorized graph algorithms on the CSR switch-fabric view.

This module is the neutral home of the BFS / equal-cost-candidate kernels
shared by the routing engines (:mod:`repro.sm.routing`), the distance cache
(:mod:`repro.sm.routing.cache`) and the SMP transport
(:mod:`repro.mad.transport`). Everything here is written against the integer
arrays of :class:`~repro.fabric.topology.SwitchFabricView`; no object-graph
traversal happens in any hot loop.

The repair predicates at the bottom are the heart of the incremental
routing engine: after a link or switch failure they identify, from the
*old* all-pairs distance matrix, exactly which BFS source trees can have
changed — everything else is provably untouched and is reused as-is (see
docs/PERFORMANCE.md for the argument).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.fabric.topology import SwitchFabricView

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "all_pairs_switch_distances",
    "equal_cost_candidates",
    "equal_cost_candidates_batch",
    "edge_sources",
    "link_failure_affected_sources",
    "switch_removal_affected_sources",
    "link_addition_affected_sources",
    "switch_addition_affected_sources",
]

#: Upper bound on the (edges x destinations) scratch matrix one batched
#: candidate pass may allocate; larger requests are processed in chunks.
_BATCH_CELL_BUDGET = 4_000_000


def bfs_distances(view: SwitchFabricView, source: int) -> np.ndarray:
    """Hop distances from *source* to every switch (frontier-vectorized BFS)."""
    n = view.num_switches
    dist = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        starts = view.indptr[frontier]
        ends = view.indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Expand CSR slices: absolute edge indices for the whole frontier.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
        nbrs = view.peer[idx]
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size == 0:
            break
        d += 1
        dist[fresh] = d
        # Deduplicate the next frontier without a sort: every switch at
        # distance d was just stamped, so select them by value.
        frontier = np.flatnonzero(dist == d)
    return dist


def bfs_tree(
    view: SwitchFabricView, dest: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """BFS in-tree toward *dest*: ``(next_hop, out_port, dist)`` per switch.

    ``next_hop[s]`` is the switch one hop closer to *dest* (-1 at *dest*
    and unreachable switches) and ``out_port[s]`` the local output port of
    that hop. The parent choice is **bit-identical** to a textbook
    deque-BFS that scans each popped switch's CSR row in order: the
    expansion below concatenates the frontier's CSR rows in frontier
    order, keeps the *first* occurrence of every newly discovered switch,
    and appends discoveries to the next frontier in that same order —
    exactly the order a FIFO queue would discover them in.
    """
    n = view.num_switches
    nxt = np.full(n, -1, dtype=np.int64)
    port = np.full(n, -1, dtype=np.int32)
    dist = np.full(n, -1, dtype=np.int64)
    dist[dest] = 0
    frontier = np.array([dest], dtype=np.int64)
    d = 0
    while frontier.size:
        starts = view.indptr[frontier]
        ends = view.indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
        nbrs = view.peer[idx]
        srcs = np.repeat(frontier, counts)
        unvisited = dist[nbrs] < 0
        cand = nbrs[unvisited]
        if cand.size == 0:
            break
        cand_edge = idx[unvisited]
        cand_src = srcs[unvisited]
        # First occurrence of each switch in (frontier-order, CSR-order)
        # concatenation == the deque discovery; keep discovery order.
        _, first = np.unique(cand, return_index=True)
        first.sort()
        fresh = cand[first]
        d += 1
        dist[fresh] = d
        nxt[fresh] = cand_src[first]
        # The forward edge fresh->parent uses the reverse port of the
        # discovered parent->fresh edge.
        port[fresh] = view.in_port[cand_edge[first]]
        frontier = fresh
    return nxt, port, dist


def all_pairs_switch_distances(view: SwitchFabricView) -> np.ndarray:
    """Dense (n x n) switch hop-distance matrix."""
    n = view.num_switches
    out = np.empty((n, n), dtype=np.int32)
    for s in range(n):
        out[s] = bfs_distances(view, s)
    return out


def edge_sources(view: SwitchFabricView) -> np.ndarray:
    """Source switch index of every CSR edge (the implicit row index)."""
    degrees = np.diff(view.indptr)
    return np.repeat(np.arange(view.num_switches, dtype=np.int64), degrees)


def equal_cost_candidates(
    view: SwitchFabricView, dist_to_dest: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-switch minimal next-hop ports toward one destination switch.

    Given the distance column ``dist_to_dest`` (hops from every switch to
    the destination), returns ``(cand_ports, cand_counts)`` where row ``s``
    of ``cand_ports`` holds the output ports of all neighbours one hop
    closer to the destination (padded with -1) and ``cand_counts[s]`` how
    many there are. The destination switch itself has zero candidates.

    Fully vectorized over the CSR edge arrays.
    """
    n = view.num_switches
    edge_src = edge_sources(view)
    good = dist_to_dest[view.peer] == dist_to_dest[edge_src] - 1
    good &= dist_to_dest[edge_src] > 0
    idx = np.nonzero(good)[0]  # ascending => grouped by source switch
    srcs = edge_src[idx]
    counts = np.bincount(srcs, minlength=n)
    maxc = int(counts.max()) if idx.size else 0
    cand = np.full((n, max(maxc, 1)), -1, dtype=np.int32)
    if idx.size:
        first = np.cumsum(counts) - counts
        pos = np.arange(idx.size) - first[srcs]
        cand[srcs, pos] = view.out_port[idx]
    return cand, counts.astype(np.int32)


def equal_cost_candidates_batch(
    view: SwitchFabricView, cols: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Equal-cost candidates for many destinations in one CSR pass.

    ``cols`` has shape ``(n, k)``: column ``j`` holds the hop distance of
    every switch to destination ``j``. Returns one ``(cand, counts)`` pair
    per column, identical to calling :func:`equal_cost_candidates` per
    destination but with the edge comparisons and the candidate packing
    batched over all destinations of a chunk (chunks bound peak memory to
    roughly ``_BATCH_CELL_BUDGET`` cells).
    """
    n = view.num_switches
    num_edges = int(view.peer.shape[0])
    k = cols.shape[1]
    edge_src = edge_sources(view)
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    chunk = max(1, _BATCH_CELL_BUDGET // max(num_edges, 1))
    for lo in range(0, k, chunk):
        sub = cols[:, lo : lo + chunk]
        c = sub.shape[1]
        dist_src = sub[edge_src]  # (E, c)
        good = (sub[view.peer] == dist_src - 1) & (dist_src > 0)
        # Flat pack: nonzero over the transposed mask yields pairs sorted
        # by (column, edge index); edge index ascending => grouped by
        # source switch, so one bincount + cumsum places every candidate.
        col_idx, eidx = np.nonzero(good.T)
        srcs = edge_src[eidx]
        key = col_idx * n + srcs
        counts_flat = np.bincount(key, minlength=c * n)
        counts2d = counts_flat.reshape(c, n)
        maxc_per = counts2d.max(axis=1) if c else np.zeros(0, dtype=np.int64)
        maxc = int(maxc_per.max()) if c else 0
        cand3d = np.full((c, n, max(maxc, 1)), -1, dtype=np.int32)
        if eidx.size:
            first = np.cumsum(counts_flat) - counts_flat
            pos = np.arange(eidx.size) - first[key]
            cand3d[col_idx, srcs, pos] = view.out_port[eidx]
        for j in range(c):
            width = max(int(maxc_per[j]), 1) if c else 1
            out.append(
                (cand3d[j, :, :width].copy(), counts2d[j].astype(np.int32))
            )
    return out


def link_failure_affected_sources(
    dist: np.ndarray,
    u: int,
    v: int,
    view: SwitchFabricView = None,
) -> np.ndarray:
    """Boolean mask of BFS sources whose tree may change when cable
    ``(u, v)`` is removed.

    In an unweighted graph the edge lies on *some* shortest path from
    source ``s`` iff ``|dist[s, u] - dist[s, v]| == 1``; since the
    endpoints were adjacent, the only alternative is equality, and then no
    shortest path from ``s`` can use the cable — removing it cannot change
    row ``s`` of the distance matrix. Without *view* that test is the
    answer — conservative, and on bipartite fabrics (trees, fat-trees,
    meshes) it marks *every* source, because adjacent switches always sit
    at different-parity distances.

    With *view* (the fabric **after** the removal, same switch indexing as
    ``dist``) the mask is exact: distances from ``s`` change iff the lost
    cable was the *unique* predecessor edge of its far end in ``s``'s BFS
    DAG. Orient the cable ``a -> b`` so ``dist[s, a] + 1 == dist[s, b]``;
    if some surviving neighbour ``x`` of ``b`` also has
    ``dist[s, x] == dist[s, b] - 1``, every shortest path through the
    cable can be re-routed ``s -> x -> b`` (the ``s -> x`` prefix cannot
    itself cross the cable: its length is below ``dist[s, b]``), so row
    ``s`` is provably unchanged.
    """
    du = dist[:, u]
    dv = dist[:, v]
    reach = (du >= 0) & (dv >= 0)
    affected = reach & (du != dv)
    if view is None or not affected.any():
        return affected
    safe = np.zeros(dist.shape[0], dtype=bool)
    for a, b in ((u, v), (v, u)):
        da = dist[:, a]
        db = dist[:, b]
        forward = reach & (da + 1 == db)
        if not forward.any():
            continue
        lo, hi = int(view.indptr[b]), int(view.indptr[b + 1])
        nbrs = view.peer[lo:hi]  # survivors only: the cable is gone
        if nbrs.size == 0:
            continue
        alt = (dist[:, nbrs] == db[:, None] - 1).any(axis=1)
        safe |= forward & alt
    return affected & ~safe


def link_addition_affected_sources(
    dist: np.ndarray, u: int, v: int
) -> np.ndarray:
    """Boolean mask of BFS sources whose tree may change when a cable
    ``(u, v)`` is *added*.

    A new edge can only shorten paths that cross it, and a shortest path
    crosses a single edge at most once. From source ``s`` the best new
    route to any ``t`` is ``dist[s, u] + 1 + dist[v, t]`` (or the mirror),
    which beats the old ``dist[s, t] <= dist[s, v] + dist[v, t]`` only if
    ``dist[s, u] + 1 < dist[s, v]`` — so row ``s`` changes iff the
    endpoints sat more than one hop apart as seen from ``s``
    (``|dist[s, u] - dist[s, v]| >= 2``), or the edge connects a
    previously unreachable component (exactly one endpoint reachable).
    This test is exact, not conservative.
    """
    du = dist[:, u]
    dv = dist[:, v]
    ru = du >= 0
    rv = dv >= 0
    return (ru & rv & (np.abs(du - dv) >= 2)) | (ru ^ rv)


def switch_addition_affected_sources(
    dist: np.ndarray, neighbors: np.ndarray
) -> np.ndarray:
    """Boolean mask of *existing* BFS sources whose tree may change when a
    new switch is cabled to the switches in *neighbors*.

    The new switch itself is not part of *dist* (its row is computed
    fresh by the caller). An existing pair ``(s, t)`` only improves by
    routing *through* the new switch: enter via some neighbour ``x_i``,
    leave via ``x_j``, at cost ``dist[s, x_i] + 2 + dist[x_j, t]``.
    Minimizing entry and exit independently is exact: if both minima land
    on the same neighbour ``x`` the bound is
    ``dist[s, x] + 2 + dist[x, t] >= dist[s, t] + 2`` and never fires.
    Unreachable entries (``-1``) are treated as infinite, so the mask
    also catches sources that gain reachability through the new switch.
    """
    n = dist.shape[0]
    nbrs = np.asarray(neighbors, dtype=np.int64)
    if nbrs.size < 2:
        # One cable (or none): every through-path would enter and leave
        # by the same neighbour, which can never shorten anything.
        return np.zeros(n, dtype=bool)
    big = np.int64(1) << 40
    sub = dist[:, nbrs].astype(np.int64)
    sub[sub < 0] = big
    near = sub.min(axis=1)  # d(s, closest neighbour); symmetric for t
    base = dist.astype(np.int64)
    base[base < 0] = big
    improved = (near[:, None] + 2 + near[None, :]) < base
    return improved.any(axis=1)


def switch_removal_affected_sources(dist: np.ndarray, w: int) -> np.ndarray:
    """Boolean mask (old indexing, ``w`` included) of BFS sources whose
    tree may change when switch ``w`` is removed.

    Source ``s`` is affected iff some shortest path from ``s`` routes
    *through* ``w``: there exists ``t != w`` with
    ``dist[s, w] + dist[w, t] == dist[s, t]``. Sources that could not even
    reach ``w`` are trivially unaffected.
    """
    n = dist.shape[0]
    dw_col = dist[:, w]
    dw_row = dist[w]
    reach_s = dw_col >= 0
    through = (dw_col[:, None] + dw_row[None, :]) == dist
    through &= reach_s[:, None] & (dw_row >= 0)[None, :] & (dist >= 0)
    through[:, w] = False
    affected = through.any(axis=1) & reach_s
    affected[w] = False
    return affected
