"""Point-to-point links between fabric ports."""

from __future__ import annotations

from typing import Tuple

from repro.errors import TopologyError
from repro.fabric.node import Port

__all__ = ["Link"]


class Link:
    """A bidirectional cable between two ports.

    ``latency`` is the one-way propagation + forwarding latency contribution
    of this hop in seconds; the SMP transport (:mod:`repro.mad.transport`)
    sums it along a route to derive the per-SMP traversal time ``k`` of the
    paper's cost model (section VI-A, footnote 4: switches closer to the SM
    are reached faster).
    """

    def __init__(self, a: Port, b: Port, *, latency: float = 100e-9) -> None:
        if a is b:
            raise TopologyError("cannot link a port to itself")
        if a.link is not None or b.link is not None:
            raise TopologyError(
                f"port already cabled: {a!r} or {b!r} has an existing link"
            )
        if a.node is b.node:
            raise TopologyError(f"loopback link on node {a.node.name!r}")
        if latency < 0:
            raise TopologyError("link latency must be non-negative")
        self.a = a
        self.b = b
        self.latency = latency
        a.link = self
        b.link = self

    def other_end(self, port: Port) -> Port:
        """Given one end, return the other."""
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise TopologyError(f"{port!r} is not an end of this link")

    @property
    def ends(self) -> Tuple[Port, Port]:
        """Both ends, in creation order."""
        return (self.a, self.b)

    def disconnect(self) -> None:
        """Unplug the cable from both ports."""
        self.a.link = None
        self.b.link = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Link {self.a.node.name}:{self.a.num}"
            f" <-> {self.b.node.name}:{self.b.num}>"
        )
