"""The control-plane worker: admission, quotas, batching, shedding.

One :class:`ControlPlaneService` is one service worker over one
:class:`~repro.virt.cloud.CloudManager`. Tenants call :meth:`submit`;
the worker journals the intent, queues it, and :meth:`pump` applies up
to ``batch_size`` queued requests as one SM sweep — boots coalesce into
a single batched LFT pass (see
:meth:`~repro.core.reconfig.VSwitchReconfigurer.copy_paths`), so N
concurrent requests cost far fewer SMPs than N serial ones.

Graceful degradation is explicit and total:

* **quota** — per-tenant ceilings checked at admission against the live
  cloud plus the queue (``rejected_quota``);
* **overload** — a bounded queue plus shedding once depth or observed
  sweep latency crosses thresholds (``rejected_overload``), always with
  a deterministic retry-after hint;
* **timeouts** — every admitted request carries a sim-clock deadline;
  transient SM failures are retried with
  :meth:`~repro.mad.reliable.RetryPolicy.waits` backoff (each wait
  charged to the sim clock), and exhausting the deadline produces an
  explicit ``timed_out`` response, never a silent drop.

Crash safety lives in the journal (see :mod:`repro.service.journal`) and
:mod:`repro.service.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    CapacityError,
    MigrationError,
    ReproError,
    ServiceError,
    ServiceKilled,
    TransportError,
    UnknownResourceError,
    VirtError,
)
from repro.mad.reliable import RetryPolicy
from repro.obs.hub import get_hub, span
from repro.service.journal import IntentJournal
from repro.service.records import (
    ServiceResponse,
    TenantQuota,
    TenantRequest,
)
from repro.virt.cloud import CloudManager

__all__ = ["ControlPlaneService", "ServiceStats", "SweepReport"]


@dataclass
class SweepReport:
    """What one :meth:`ControlPlaneService.pump` did."""

    applied: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    lft_smps: int = 0
    ideal_lft_smps: int = 0
    latency_s: float = 0.0


@dataclass
class ServiceStats:
    """Cumulative request accounting; the no-silent-drop ledger.

    Invariant (checked by the chaos runner): every submission is exactly
    one of completed / failed / rejected / timed out / still pending.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_quota: int = 0
    rejected_overload: int = 0
    timed_out: int = 0
    duplicates: int = 0
    sweeps: int = 0
    applied_requests: int = 0
    lft_smps: int = 0
    ideal_lft_smps: int = 0
    peak_queue_depth: int = 0
    recoveries: int = 0
    #: Requests re-driven by recovery (reconciled or re-executed).
    recovered_requests: int = 0

    @property
    def coalescing_ratio(self) -> float:
        """Applied requests per SM sweep (> 1 once batching pays off)."""
        return self.applied_requests / self.sweeps if self.sweeps else 0.0

    @property
    def smp_coalescing_ratio(self) -> float:
        """Serial-boot SMP cost / batched cost (1.0 when nothing saved)."""
        if not self.lft_smps:
            return 1.0
        return self.ideal_lft_smps / self.lft_smps

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions shed by admission control."""
        if not self.submitted:
            return 0.0
        return (
            self.rejected_quota + self.rejected_overload
        ) / self.submitted


class ControlPlaneService:
    """One multi-tenant control-plane worker (see module docstring)."""

    def __init__(
        self,
        cloud: CloudManager,
        *,
        journal: Optional[IntentJournal] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        max_queue_depth: int = 64,
        batch_size: int = 8,
        request_timeout_s: float = 0.25,
        retry_policy: Optional[RetryPolicy] = None,
        shed_queue_fraction: float = 0.75,
        shed_sweep_latency_s: float = 0.05,
        sweep_cost_s: float = 1e-4,
        genesis: Optional[Dict[str, object]] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be >= 1")
        if batch_size < 1:
            raise ServiceError("batch_size must be >= 1")
        if not 0.0 < shed_queue_fraction <= 1.0:
            raise ServiceError("shed_queue_fraction must be in (0, 1]")
        self.cloud = cloud
        self.journal = journal if journal is not None else IntentJournal()
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.max_queue_depth = max_queue_depth
        self.batch_size = batch_size
        self.request_timeout_s = request_timeout_s
        self.retry_policy = retry_policy or RetryPolicy()
        self.shed_queue_fraction = shed_queue_fraction
        self.shed_sweep_latency_s = shed_sweep_latency_s
        self.sweep_cost_s = sweep_cost_s
        self.stats = ServiceStats()
        self.last_sweep_latency_s = 0.0
        #: True once the worker died (crash point fired); every further
        #: call raises — recovery builds a *new* worker from the journal.
        self.dead = False
        self._queue: List[TenantRequest] = []
        #: Terminal responses by request id (the idempotency table).
        self._responses: Dict[str, ServiceResponse] = {}
        #: Per-tenant serials for deterministic request ids / VM names.
        #: Kept separate so caller-minted idempotency keys (which skip
        #: the id serial) still get collision-free VM names.
        self._serials: Dict[str, int] = {}
        self._name_serials: Dict[str, int] = {}
        self._restore_serials()
        if self.journal.head_seq == 0 and genesis is not None:
            self._journal("genesis", "", genesis)

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        tenant: str,
        op: str,
        *,
        request_id: Optional[str] = None,
        **params: Optional[str],
    ) -> ServiceResponse:
        """Admit one tenant request; journal it; queue it.

        Returns ``accepted`` on admission, a terminal rejection
        otherwise, or the original response on an idempotency-key replay.
        """
        self._check_alive()
        hub = get_hub()
        with span("service_submit", tenant=tenant, op=op):
            if request_id is not None and (
                duplicate := self._replay(request_id)
            ):
                return duplicate
            self.stats.submitted += 1
            if request_id is None:
                request_id = self._next_request_id(tenant, op)
            rejection = self._admission_check(tenant, op)
            if rejection is not None:
                response = ServiceResponse(
                    request_id=request_id,
                    status=rejection[0],
                    detail=rejection[1],
                    retry_after_s=self._retry_after(),
                )
                self._finish(None, response, terminal_journal=False)
                return response
            request = TenantRequest(
                request_id=request_id,
                tenant=tenant,
                op=op,
                params=self._bind_params(tenant, op, params),
                submitted_at=hub.now(),
                deadline=hub.now() + self.request_timeout_s,
            )
            self._journal("intent", request.request_id, request.as_dict())
            self._queue.append(request)
            self.stats.peak_queue_depth = max(
                self.stats.peak_queue_depth, len(self._queue)
            )
            hub.metrics.gauge("repro_service_queue_depth").set(
                len(self._queue)
            )
            return ServiceResponse(
                request_id=request.request_id, status="accepted"
            )

    def enqueue_recovered(self, request: TenantRequest) -> None:
        """Recovery path: queue an intent already present in the journal
        (no admission re-check — it was admitted before the crash)."""
        self._check_alive()
        self._queue.append(request)

    # -- the sweep ---------------------------------------------------------

    def pump(self) -> SweepReport:
        """Apply up to ``batch_size`` queued requests as one SM sweep."""
        self._check_alive()
        hub = get_hub()
        report = SweepReport()
        started = hub.now()
        with span("service_pump", queued=len(self._queue)) as sp:
            self._expire_queued(report)
            batch = self._queue[: self.batch_size]
            del self._queue[: len(batch)]
            if batch:
                self.stats.sweeps += 1
                boots = [r for r in batch if r.op == "boot"]
                others = [r for r in batch if r.op != "boot"]
                self._apply_boots(boots, report)
                for request in others:
                    self._apply_one(request, report)
                hub.advance(self.sweep_cost_s)
            self.last_sweep_latency_s = hub.now() - started
            report.latency_s = self.last_sweep_latency_s
            sp.set_attributes(
                applied=report.applied, latency_s=report.latency_s
            )
        metrics = hub.metrics
        metrics.counter("repro_service_sweeps_total").add(1 if batch else 0)
        metrics.gauge("repro_service_queue_depth").set(len(self._queue))
        metrics.gauge("repro_service_sweep_latency_seconds").set(
            self.last_sweep_latency_s
        )
        return report

    def drain(self, *, max_sweeps: int = 10_000) -> List[SweepReport]:
        """Pump until the queue is empty (bounded; raises if it is not)."""
        reports = []
        for _ in range(max_sweeps):
            if not self._queue:
                return reports
            reports.append(self.pump())
        raise ServiceError(
            f"queue failed to drain within {max_sweeps} sweeps"
        )

    def kill(self) -> None:
        """Model SIGKILL: the worker's memory is gone, the journal stays."""
        self.dead = True

    # -- queries -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet applied."""
        return len(self._queue)

    def response_for(self, request_id: str) -> Optional[ServiceResponse]:
        """The terminal response for a request id, if any yet."""
        return self._responses.get(request_id)

    @property
    def shedding(self) -> bool:
        """True while admission control is rejecting new load."""
        return (
            len(self._queue)
            >= self.shed_queue_fraction * self.max_queue_depth
            or self.last_sweep_latency_s > self.shed_sweep_latency_s
        )

    def pending_accounted(self) -> int:
        """Submissions not yet terminal (must be 0 after a drain)."""
        return (
            self.stats.submitted
            - self.stats.completed
            - self.stats.failed
            - self.stats.rejected_quota
            - self.stats.rejected_overload
            - self.stats.timed_out
        )

    # -- internals: admission ---------------------------------------------

    def _check_alive(self) -> None:
        if self.dead:
            raise ServiceError(
                "service worker is dead; recover from the journal"
            )

    def _replay(self, request_id: str) -> Optional[ServiceResponse]:
        """Idempotency: a known id returns its recorded outcome."""
        known = self._responses.get(request_id)
        if known is not None:
            self.stats.duplicates += 1
            get_hub().metrics.counter(
                "repro_service_duplicates_total"
            ).add(1)
            return known
        if any(r.request_id == request_id for r in self._queue):
            self.stats.duplicates += 1
            return ServiceResponse(
                request_id=request_id,
                status="accepted",
                detail="already queued",
            )
        return None

    def _next_request_id(self, tenant: str, op: str) -> str:
        serial = self._serials.get(tenant, 0) + 1
        self._serials[tenant] = serial
        return f"{tenant}/{op}/{serial}"

    def _restore_serials(self) -> None:
        """Recover per-tenant serials from journaled intents so a
        restarted worker never reuses a request id or VM name."""
        for state in self.journal.requests().values():
            intent = state["intent"]
            tenant = str(intent["tenant"])  # type: ignore[index]
            tail = str(intent["request_id"]).rsplit("/", 1)[-1]  # type: ignore[index]
            if tail.isdigit():
                self._serials[tenant] = max(
                    self._serials.get(tenant, 0), int(tail)
                )
            if str(intent["op"]) == "boot":  # type: ignore[index]
                name = dict(intent.get("params") or {}).get("name") or ""  # type: ignore[union-attr]
                prefix = f"{tenant}-vm"
                if name.startswith(prefix) and name[len(prefix):].isdigit():
                    self._name_serials[tenant] = max(
                        self._name_serials.get(tenant, 0),
                        int(name[len(prefix):]),
                    )

    def quota_for(self, tenant: str) -> TenantQuota:
        """The effective quota for *tenant*."""
        return self.quotas.get(tenant, self.default_quota)

    def _tenant_usage(self, tenant: str) -> Tuple[int, int]:
        """(vms, migrations_in_flight): live cloud state + the queue."""
        vms = len(self.cloud.vms_of_tenant(tenant))
        queued_boots = sum(
            1
            for r in self._queue
            if r.tenant == tenant and r.op == "boot"
        )
        migrations = sum(
            1
            for r in self._queue
            if r.tenant == tenant and r.op in ("migrate", "evacuate")
        )
        return vms + queued_boots, migrations

    def _admission_check(
        self, tenant: str, op: str
    ) -> Optional[Tuple[str, str]]:
        """None to admit, else (status, detail)."""
        quota = self.quota_for(tenant)
        vms, migrations = self._tenant_usage(tenant)
        if op == "boot":
            ceiling = min(quota.max_vms, quota.max_vfs)
            if vms + 1 > ceiling:
                self._count_rejection("quota")
                return (
                    "rejected_quota",
                    f"{tenant} at {vms}/{ceiling} VMs",
                )
        if op in ("migrate", "evacuate"):
            if migrations + 1 > quota.max_migrations_in_flight:
                self._count_rejection("quota")
                return (
                    "rejected_quota",
                    f"{tenant} at {migrations}/"
                    f"{quota.max_migrations_in_flight} migrations in"
                    " flight",
                )
        if len(self._queue) >= self.max_queue_depth:
            self._count_rejection("overload")
            return ("rejected_overload", "request queue is full")
        if self.shedding:
            self._count_rejection("overload")
            return (
                "rejected_overload",
                f"shedding: depth {len(self._queue)},"
                f" sweep {self.last_sweep_latency_s * 1e3:.3f}ms",
            )
        return None

    def _count_rejection(self, reason: str) -> None:
        if reason == "quota":
            self.stats.rejected_quota += 1
        else:
            self.stats.rejected_overload += 1
        get_hub().metrics.counter(
            "repro_service_rejected_total", reason=reason
        ).add(1)

    def _retry_after(self) -> float:
        """Deterministic retry hint: time to drain the current queue."""
        sweeps_needed = len(self._queue) // self.batch_size + 1
        per_sweep = max(
            self.last_sweep_latency_s,
            self.sweep_cost_s,
            self.retry_policy.timeout_s,
        )
        return sweeps_needed * per_sweep

    def _bind_params(
        self, tenant: str, op: str, params: Dict[str, Optional[str]]
    ) -> Dict[str, Optional[str]]:
        """Pin everything replay needs at admission time — most notably
        the VM name, so a journal replay boots the same VM."""
        bound = {
            key: value
            for key, value in sorted(params.items())
            if value is not None
        }
        if op == "boot" and "name" not in bound:
            serial = self._name_serials.get(tenant, 0) + 1
            self._name_serials[tenant] = serial
            bound["name"] = f"{tenant}-vm{serial}"
        if op == "stop" and "name" not in bound:
            raise ServiceError("stop requests must name a VM")
        if op == "migrate" and "name" not in bound:
            raise ServiceError("migrate requests must name a VM")
        if op == "migrate" and "dest" not in bound:
            # Bind the destination now so warm recovery can tell an
            # applied-but-unjournaled migration apart from a pending one
            # (the VM sitting at its bound dest IS the evidence). Unknown
            # VMs and zero-capacity fabrics stay unbound; the apply path
            # maps those errors precisely.
            vm = self.cloud.vms.get(bound.get("name") or "")
            if vm is not None:
                candidates = [
                    h
                    for h in self.cloud.hypervisors.values()
                    if h.name != vm.hypervisor_name and h.has_capacity()
                ]
                try:
                    bound["dest"] = self.cloud.placement.choose(
                        candidates
                    ).name
                except CapacityError:
                    pass
        if op == "evacuate" and "hypervisor" not in bound:
            raise ServiceError("evacuate requests must name a hypervisor")
        return bound

    # -- internals: applying ----------------------------------------------

    def _expire_queued(self, report: SweepReport) -> None:
        """Time out queued requests whose deadline has passed. Explicit:
        each gets an ``aborted`` journal entry and a terminal response."""
        now = get_hub().now()
        alive: List[TenantRequest] = []
        for request in self._queue:
            if request.deadline is not None and now > request.deadline:
                report.timed_out += 1
                self._finish(
                    request,
                    ServiceResponse(
                        request_id=request.request_id,
                        status="timed_out",
                        detail="deadline passed while queued",
                        retry_after_s=self._retry_after(),
                    ),
                )
            else:
                alive.append(request)
        self._queue = alive

    def _apply_boots(
        self, boots: List[TenantRequest], report: SweepReport
    ) -> None:
        """Apply the sweep's boots as one coalesced batch.

        The fallback ladder keeps one poisoned request from starving the
        batch: transport faults retry the whole batch with backoff, then
        anything still failing is applied (and error-mapped) one by one.
        """
        if not boots:
            return
        specs = [
            (r.params["name"], r.params.get("on"), r.tenant) for r in boots
        ]
        waits = list(self.retry_policy.waits())
        for attempt in range(len(waits) + 1):
            try:
                vms, batch = self.cloud.boot_vms_batch(specs)
            except TransportError:
                if attempt < len(waits):
                    self._charge_wait(waits[attempt])
                    continue
                for request in boots:
                    self._apply_one(request, report, retries=False)
                return
            except VirtError:
                # Capacity / duplicate problems are per-request; let the
                # individual path map each one precisely.
                for request in boots:
                    self._apply_one(request, report, retries=True)
                return
            break
        report.lft_smps += batch.lft_smps
        report.ideal_lft_smps += batch.ideal_lft_smps
        self.stats.lft_smps += batch.lft_smps
        self.stats.ideal_lft_smps += batch.ideal_lft_smps
        for request, vm, boot in zip(boots, vms, batch.boots):
            self._journal(
                "applied",
                request.request_id,
                {
                    "op": "boot",
                    "vm": vm.name,
                    "hypervisor": vm.hypervisor_name,
                    "vf": boot.vf_name,
                    "lid": boot.lid,
                },
            )
            report.applied += 1
            report.completed += 1
            self.stats.applied_requests += 1
            self._finish(
                request,
                ServiceResponse(
                    request_id=request.request_id,
                    status="completed",
                    detail=f"{vm.name} on {vm.hypervisor_name}",
                ),
            )

    def _apply_one(
        self,
        request: TenantRequest,
        report: SweepReport,
        *,
        retries: bool = True,
    ) -> None:
        """Apply one request with backoff retries on transport faults."""
        waits = list(self.retry_policy.waits()) if retries else []
        now = get_hub().now()
        if request.deadline is not None and now > request.deadline:
            report.timed_out += 1
            self._finish(
                request,
                ServiceResponse(
                    request_id=request.request_id,
                    status="timed_out",
                    detail="deadline passed before apply",
                    retry_after_s=self._retry_after(),
                ),
            )
            return
        for attempt in range(len(waits) + 1):
            try:
                payload, response = self._execute(request)
            except TransportError as exc:
                deadline_ok = (
                    request.deadline is None
                    or get_hub().now() <= request.deadline
                )
                if attempt < len(waits) and deadline_ok:
                    self._charge_wait(waits[attempt])
                    continue
                report.timed_out += 1
                self._finish(
                    request,
                    ServiceResponse(
                        request_id=request.request_id,
                        status="timed_out",
                        detail=f"transport: {exc}",
                        retry_after_s=self._retry_after(),
                    ),
                )
                return
            except ReproError as exc:
                report.failed += 1
                self._finish(
                    request,
                    self._map_failure(request, exc),
                )
                return
            break
        self._journal("applied", request.request_id, payload)
        report.applied += 1
        self.stats.applied_requests += 1
        if response.status == "completed":
            report.completed += 1
        else:
            report.failed += 1
        self._finish(request, response, applied=True)

    def _execute(
        self, request: TenantRequest
    ) -> Tuple[Dict[str, object], ServiceResponse]:
        """Run one op against the cloud; returns (applied payload,
        terminal response). Raises on transport/validation errors."""
        params = request.params
        rid = request.request_id
        if request.op == "boot":
            vm = self.cloud.boot_vm(
                params["name"], on=params.get("on"), tenant=request.tenant
            )
            payload = {
                "op": "boot",
                "vm": vm.name,
                "hypervisor": vm.hypervisor_name,
                "vf": vm.vf.name if vm.vf is not None else None,
                "lid": vm.lid,
            }
            return payload, ServiceResponse(
                request_id=rid,
                status="completed",
                detail=f"{vm.name} on {vm.hypervisor_name}",
            )
        if request.op == "stop":
            name = params["name"]
            self._check_owner(request, name)
            self.cloud.stop_vm(name)
            return (
                {"op": "stop", "vm": name},
                ServiceResponse(
                    request_id=rid, status="completed", detail=name
                ),
            )
        if request.op == "migrate":
            name = params["name"]
            self._check_owner(request, name)
            dest = params.get("dest")
            if dest is None:
                vm = self.cloud.vms[name]
                candidates = [
                    h
                    for h in self.cloud.hypervisors.values()
                    if h.name != vm.hypervisor_name and h.has_capacity()
                ]
                dest = self.cloud.placement.choose(candidates).name
            result = self.cloud.live_migrate(name, dest)
            payload = {
                "op": "migrate",
                "vm": name,
                "dest": dest,
                "outcome": result.outcome,
            }
            if result.outcome == "completed":
                return payload, ServiceResponse(
                    request_id=rid,
                    status="completed",
                    detail=f"{name} -> {dest}",
                )
            return payload, ServiceResponse(
                request_id=rid,
                status="failed",
                detail=f"migration {result.outcome}: {result.failure}",
                retry_after_s=(
                    self._retry_after()
                    if result.outcome == "rolled_back"
                    else None
                ),
            )
        if request.op == "evacuate":
            hyp_name = params["hypervisor"]
            results = self.cloud.evacuate(hyp_name)
            moved = [
                {"vm": r.vm_name, "dest": r.destination, "outcome": r.outcome}
                for r in results
            ]
            remaining = len(
                list(self.cloud.hypervisors[hyp_name].running_vms())
            )
            payload = {
                "op": "evacuate",
                "hypervisor": hyp_name,
                "migrations": moved,
                "remaining": remaining,
            }
            if remaining:
                return payload, ServiceResponse(
                    request_id=rid,
                    status="failed",
                    detail=(
                        f"partial drain: {remaining} VMs still on"
                        f" {hyp_name} (no capacity)"
                    ),
                    retry_after_s=self._retry_after(),
                )
            return payload, ServiceResponse(
                request_id=rid,
                status="completed",
                detail=f"{hyp_name} drained ({len(moved)} migrations)",
            )
        raise ServiceError(f"unknown op {request.op!r}")

    def _check_owner(self, request: TenantRequest, vm_name: str) -> None:
        """Tenant isolation: operating on another tenant's VM is an
        unknown-resource error, indistinguishable from absence."""
        vm = self.cloud.vms.get(vm_name)
        if vm is None or vm.tenant != request.tenant:
            raise UnknownResourceError(
                f"unknown VM {vm_name!r} for tenant {request.tenant!r}"
            )

    def _map_failure(
        self, request: TenantRequest, exc: ReproError
    ) -> ServiceResponse:
        """Deterministic failure taxonomy: retryable vs permanent."""
        if isinstance(exc, CapacityError):
            return ServiceResponse(
                request_id=request.request_id,
                status="failed",
                detail=f"capacity: {exc}",
                retry_after_s=self._retry_after(),
            )
        if isinstance(exc, (UnknownResourceError, MigrationError)):
            return ServiceResponse(
                request_id=request.request_id,
                status="failed",
                detail=str(exc),
            )
        return ServiceResponse(
            request_id=request.request_id,
            status="failed",
            detail=f"{type(exc).__name__}: {exc}",
        )

    def _charge_wait(self, wait: float) -> None:
        hub = get_hub()
        hub.advance(wait)
        hub.metrics.counter("repro_service_retry_waits_total").add(1)

    # -- internals: bookkeeping -------------------------------------------

    def _journal(
        self, phase: str, request_id: str, payload: Dict[str, object]
    ) -> None:
        try:
            self.journal.append(phase, request_id, payload)
        except ServiceKilled:
            self.dead = True
            raise
        get_hub().metrics.counter(
            "repro_service_journal_entries_total", phase=phase
        ).add(1)

    def _finish(
        self,
        request: Optional[TenantRequest],
        response: ServiceResponse,
        *,
        applied: bool = False,
        terminal_journal: bool = True,
    ) -> None:
        """Record a terminal response (and its journal entry)."""
        self._responses[response.request_id] = response
        if response.status == "completed":
            self.stats.completed += 1
        elif response.status == "failed":
            self.stats.failed += 1
        elif response.status == "timed_out":
            self.stats.timed_out += 1
            get_hub().metrics.counter(
                "repro_service_timeouts_total"
            ).add(1)
        get_hub().metrics.counter(
            "repro_service_requests_total",
            op=request.op if request is not None else "rejected",
            outcome=response.status,
        ).add(1)
        if request is not None and terminal_journal:
            phase = "completed" if applied or response.ok else "aborted"
            self._journal(
                phase,
                request.request_id,
                {"status": response.status, "detail": response.detail},
            )
