"""The multi-tenant control-plane service (the OpenStack-Neutron shape).

``repro.service`` is the tenant-facing layer over
:class:`~repro.virt.cloud.CloudManager`: every boot/stop/migrate/evacuate
arrives as a versioned, idempotency-keyed request, survives in a
write-ahead intent journal, passes admission control (per-tenant quotas,
a bounded queue, explicit load shedding with retry-after), and is applied
in coalesced batches so N concurrent requests cost few SM sweeps.

The headline property is robustness: kill the service worker at *any*
point and :mod:`repro.service.recovery` reconstructs the exact
tenant/VM/VF/LID state from the journal — warm (reconciling against the
surviving fabric) or cold (rebuilding the cloud from genesis and
replaying) — with no orphaned VFs, leaked LIDs or double-booted VMs.

See ``docs/SERVICE.md`` for the tenant model, the journal format, the
recovery procedure, and the shedding thresholds.
"""

from repro.service.journal import IntentJournal, ServiceJournalEntry
from repro.service.records import (
    ServiceResponse,
    TenantQuota,
    TenantRequest,
)
from repro.service.recovery import (
    RecoveryReport,
    audit_cloud,
    cloud_fingerprint,
    rebuild_from_journal,
    recover_service,
)
from repro.service.service import ControlPlaneService, SweepReport

__all__ = [
    "ControlPlaneService",
    "IntentJournal",
    "RecoveryReport",
    "ServiceJournalEntry",
    "ServiceResponse",
    "SweepReport",
    "TenantQuota",
    "TenantRequest",
    "audit_cloud",
    "cloud_fingerprint",
    "rebuild_from_journal",
    "recover_service",
]
