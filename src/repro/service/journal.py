"""The write-ahead intent journal — the service's only durable state.

Same sequence/replay idiom as
:class:`~repro.sm.ha.journal.ReplicationJournal` (monotonic seqs from 1,
strictly ordered replay), but unbounded and phase-structured: every
tenant request appends an ``intent`` entry *before* anything touches the
fabric, an ``applied`` entry once the cloud operation finished (with its
observable effects in the payload), and a ``completed`` entry when the
response is final. ``aborted`` marks terminal failures. A ``genesis``
entry at seq 1 pins the cloud configuration so a cold rebuild can
reconstruct the fabric from nothing but the journal.

Appends are atomic: a crash (the chaos ``kill-service`` knob, modelled by
:meth:`IntentJournal.arm_crash`) happens *between* appends — either right
after an entry was written, or instead of the next write (the op ran, its
``applied`` record is lost). Those two points cover every interleaving a
single-worker service can die in, because the cloud operations themselves
are atomic-with-rollback (PR 4's compensating-action machinery).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError, ServiceKilled

__all__ = ["ENTRY_PHASES", "IntentJournal", "ServiceJournalEntry"]

#: Legal entry phases, in lifecycle order where applicable.
ENTRY_PHASES = ("genesis", "intent", "applied", "completed", "aborted")


@dataclass(frozen=True)
class ServiceJournalEntry:
    """One immutable journal record."""

    seq: int
    phase: str
    request_id: str
    payload: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSONL line form."""
        return {
            "seq": self.seq,
            "phase": self.phase,
            "request_id": self.request_id,
            "payload": self.payload,
        }


class IntentJournal:
    """Append-only, seq-numbered WAL with optional JSONL durability.

    ``sink`` (a file path) makes every append durable immediately — the
    JSONL file is the on-disk journal ``repro serve`` writes. In-memory
    journals (tests, chaos) are equally valid: durability is a sink
    property, the replay semantics are identical.
    """

    def __init__(self, sink: Optional[Path] = None) -> None:
        self.entries: List[ServiceJournalEntry] = []
        self.sink = Path(sink) if sink is not None else None
        #: Armed crash point: ``(seq, before)``. ``before=False`` kills
        #: the worker right after entry *seq* is appended; ``before=True``
        #: kills it *instead of* appending entry seq (the write is lost).
        self._crash: Optional[Tuple[int, bool]] = None

    # -- writing -----------------------------------------------------------

    def append(
        self,
        phase: str,
        request_id: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> ServiceJournalEntry:
        """Append one entry; returns it. May raise :class:`ServiceKilled`
        at an armed crash point (chaos / property tests)."""
        if phase not in ENTRY_PHASES:
            raise ServiceError(f"unknown journal phase {phase!r}")
        seq = self.head_seq + 1
        if self._crash is not None and self._crash == (seq, True):
            self._crash = None
            raise ServiceKilled(
                f"service worker killed before journal seq {seq}"
                f" ({phase} for {request_id!r} lost)"
            )
        entry = ServiceJournalEntry(seq, phase, request_id, payload or {})
        self.entries.append(entry)
        if self.sink is not None:
            with self.sink.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry.as_dict(), sort_keys=True) + "\n")
        if self._crash is not None and self._crash == (seq, False):
            self._crash = None
            raise ServiceKilled(
                f"service worker killed after journal seq {seq}"
            )
        return entry

    def arm_crash(self, seq: int, *, before: bool = False) -> None:
        """Arm a one-shot :class:`~repro.errors.ServiceKilled` at *seq*."""
        if seq < 1:
            raise ServiceError("crash seq is 1-based")
        self._crash = (seq, before)

    # -- reading -----------------------------------------------------------

    @property
    def head_seq(self) -> int:
        """Seq of the newest entry (0 when empty)."""
        return self.entries[-1].seq if self.entries else 0

    def entries_since(self, seq: int) -> List[ServiceJournalEntry]:
        """All entries with ``entry.seq > seq``, in order."""
        return [e for e in self.entries if e.seq > seq]

    def genesis(self) -> Optional[Dict[str, object]]:
        """The genesis payload (cloud build recipe), if journaled."""
        for entry in self.entries:
            if entry.phase == "genesis":
                return entry.payload
        return None

    def phases_of(self, request_id: str) -> List[str]:
        """The phases recorded for one request, in append order."""
        return [
            e.phase for e in self.entries if e.request_id == request_id
        ]

    def requests(self) -> "Dict[str, Dict[str, object]]":
        """Fold the journal into per-request state, in intent order.

        Returns ``request_id -> {"intent": payload, "phase": last phase,
        "applied": payload or None, "applied_seq": int or None,
        "terminal": payload or None}``. The dict preserves intent order,
        which is the order pending requests must be re-executed in; the
        terminal payload lets recovery rebuild the idempotency table so
        a client retrying a finished request gets its original answer
        instead of a double execution.
        """
        folded: Dict[str, Dict[str, object]] = {}
        for entry in self.entries:
            if entry.phase == "genesis":
                continue
            if entry.phase == "intent":
                if entry.request_id in folded:
                    raise ServiceError(
                        f"duplicate intent for {entry.request_id!r}"
                        f" at seq {entry.seq}"
                    )
                folded[entry.request_id] = {
                    "intent": entry.payload,
                    "phase": "intent",
                    "applied": None,
                    "applied_seq": None,
                    "terminal": None,
                }
                continue
            state = folded.get(entry.request_id)
            if state is None:
                raise ServiceError(
                    f"{entry.phase} without intent for"
                    f" {entry.request_id!r} at seq {entry.seq}"
                )
            state["phase"] = entry.phase
            if entry.phase == "applied":
                state["applied"] = entry.payload
                state["applied_seq"] = entry.seq
            elif entry.phase in ("completed", "aborted"):
                state["terminal"] = entry.payload
        return folded

    # -- durability --------------------------------------------------------

    def clipped(self, seq: int) -> "IntentJournal":
        """A new in-memory journal holding only entries up to *seq* — what
        a recovering worker reads after a crash at that offset."""
        clone = IntentJournal()
        clone.entries = [e for e in self.entries if e.seq <= seq]
        return clone

    @classmethod
    def from_jsonl(cls, path: Path) -> "IntentJournal":
        """Load a journal previously written through a ``sink``."""
        journal = cls()
        expected = 1
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            data = json.loads(line)
            entry = ServiceJournalEntry(
                seq=int(data["seq"]),
                phase=str(data["phase"]),
                request_id=str(data["request_id"]),
                payload=dict(data.get("payload") or {}),
            )
            if entry.seq != expected:
                raise ServiceError(
                    f"journal gap: expected seq {expected},"
                    f" found {entry.seq}"
                )
            journal.entries.append(entry)
            expected += 1
        return journal
