"""Crash recovery: warm reconciliation and cold journal replay.

Two recovery modes, both driven purely by the intent journal:

* **warm** (:func:`recover_service`) — the fabric and the cloud object
  survived, only the worker died. Terminal requests are left alone;
  requests whose ``applied`` entry exists but whose ``completed`` entry
  was lost are finished; pending intents are *reconciled*: if the cloud
  already shows the op's effects (the worker died after applying but
  before journaling ``applied``), the journal is brought up to date
  retroactively — never re-executing, so no double-booted VMs — and
  otherwise the intent is re-queued for execution.
* **cold** (:func:`rebuild_from_journal`) — nothing but the journal
  survived. The genesis entry rebuilds the fabric from its preset, every
  ``applied`` operation is re-executed in applied order (failed and
  rolled-back operations left no state and are skipped), and pending
  intents are re-queued. Because placement, VF selection and LID
  assignment are all deterministic, the rebuilt tenant/VM/VF/LID state is
  byte-identical to the original — the property the hypothesis suite
  asserts via :func:`cloud_fingerprint`.

:func:`audit_cloud` is the invariant checker both modes (and the chaos
runner) finish with: no orphaned VFs, no leaked LIDs, no VM/VF mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RecoveryError, ReproError
from repro.obs.hub import get_hub, span
from repro.service.journal import IntentJournal
from repro.service.records import ServiceResponse, TenantRequest
from repro.service.service import ControlPlaneService
from repro.virt.cloud import CloudManager

__all__ = [
    "RecoveryReport",
    "audit_cloud",
    "cloud_fingerprint",
    "rebuild_from_journal",
    "recover_service",
]


@dataclass
class RecoveryReport:
    """What one recovery pass did."""

    mode: str = ""
    journal_entries: int = 0
    terminal_requests: int = 0
    #: Applied-but-not-completed requests finished retroactively.
    finished: int = 0
    #: Pending intents whose effects were already on the fabric.
    reconciled: int = 0
    #: Pending intents re-queued for execution.
    requeued: int = 0
    #: Applied operations re-executed (cold mode only).
    replayed: int = 0
    #: Post-recovery invariant violations (must be empty).
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the post-recovery audit found nothing wrong."""
        return not self.problems


def audit_cloud(cloud: CloudManager) -> List[str]:
    """Invariant check: every VF, LID and VM accounted for.

    Returns human-readable problems (empty = clean): attached VFs must
    belong to exactly one registered VM and vice versa; every extra LID
    bound to a hypervisor uplink must be held by the PF or an attached
    VF (dynamic scheme) or any VF (prepopulated); no VM without a VF.
    """
    problems: List[str] = []
    vms_by_vf: Dict[str, str] = {}
    for name in sorted(cloud.vms):
        vm = cloud.vms[name]
        if vm.vf is None:
            problems.append(f"VM {name} holds no VF")
            continue
        vms_by_vf[vm.vf.name] = name
        if vm.vf.vm_name != name:
            problems.append(
                f"VM {name} holds {vm.vf.name} but the VF records"
                f" {vm.vf.vm_name!r}"
            )
    for hyp_name in sorted(cloud.hypervisors):
        hyp = cloud.hypervisors[hyp_name]
        vsw = hyp.vswitch
        for vf in vsw.vfs:
            if vf.vm_name is not None and vf.name not in vms_by_vf:
                problems.append(
                    f"orphaned VF: {vf.name} attached to"
                    f" {vf.vm_name!r} but no such VM is registered"
                )
        scheme_dynamic = cloud.scheme.name == "dynamic"
        held = {vsw.pf.lid} | {
            vf.lid for vf in vsw.vfs if vf.lid is not None
        }
        for lid in cloud.sm.lid_manager.lids_on_port(vsw.uplink_port):
            if lid not in held:
                problems.append(
                    f"leaked LID {lid} on {hyp_name}: bound to the"
                    " uplink but held by no PF/VF"
                )
        if scheme_dynamic:
            for vf in vsw.vfs:
                if vf.vm_name is None and vf.lid is not None:
                    problems.append(
                        f"leaked LID {vf.lid}: free VF {vf.name} still"
                        " holds a dynamic LID"
                    )
    return problems


def cloud_fingerprint(cloud: CloudManager) -> str:
    """Canonical digest of tenant/VM/VF/LID state plus routing bytes.

    Two clouds with equal fingerprints place every tenant's VMs on the
    same hypervisors and VFs with the same LIDs, and forward every LID
    identically on every switch — the byte-identity the crash-recovery
    property is stated over. Sim-clock and transport accounting are
    deliberately excluded (a recovered run retries more, but must land
    in the same state).
    """
    state: Dict[str, object] = {"vms": [], "hypervisors": [], "lids": []}
    for name in sorted(cloud.vms):
        vm = cloud.vms[name]
        state["vms"].append(  # type: ignore[union-attr]
            {
                "name": name,
                "tenant": vm.tenant,
                "state": vm.state.value,
                "hypervisor": vm.hypervisor_name,
                "vf": vm.vf.name if vm.vf is not None else None,
                "lid": vm.lid,
            }
        )
    for hyp_name in sorted(cloud.hypervisors):
        hyp = cloud.hypervisors[hyp_name]
        state["hypervisors"].append(  # type: ignore[union-attr]
            {
                "name": hyp_name,
                "free_vfs": hyp.free_vf_count,
                "vf_lids": [vf.lid for vf in hyp.vswitch.vfs],
            }
        )
    for lid in cloud.sm.topology.bound_lids():
        port = cloud.sm.topology.port_of_lid(lid)
        state["lids"].append(  # type: ignore[union-attr]
            {
                "lid": lid,
                "port": (
                    f"{port.node.name}:{port.num}"
                    if port is not None
                    else None
                ),
            }
        )
    digest = hashlib.sha256(
        json.dumps(state, sort_keys=True).encode("utf-8")
    )
    for sw in cloud.sm.topology.switches:
        digest.update(sw.name.encode("utf-8"))
        digest.update(sw.lft.as_array().tobytes())
    return digest.hexdigest()


# -- warm recovery ---------------------------------------------------------


def recover_service(
    journal: IntentJournal,
    cloud: CloudManager,
    **service_kwargs: object,
) -> Tuple[ControlPlaneService, RecoveryReport]:
    """Warm recovery: a new worker over the surviving cloud."""
    report = RecoveryReport(
        mode="warm", journal_entries=journal.head_seq
    )
    with span("service_recover", mode="warm"):
        service = ControlPlaneService(
            cloud, journal=journal, **service_kwargs  # type: ignore[arg-type]
        )
        folded = journal.requests()
        for request_id, state in folded.items():
            phase = str(state["phase"])
            request = TenantRequest.from_dict(state["intent"])  # type: ignore[arg-type]
            if phase in ("completed", "aborted"):
                _restore_response(service, request, state["terminal"])  # type: ignore[arg-type]
                report.terminal_requests += 1
                continue
            if phase == "applied":
                _finish_applied(service, request, state["applied"])  # type: ignore[arg-type]
                report.finished += 1
                continue
            # Intent only: did the op's effects reach the fabric?
            if _effects_present(cloud, request):
                payload = _reconstruct_applied(cloud, request)
                service._journal("applied", request_id, payload)
                _finish_applied(service, request, payload)
                report.reconciled += 1
            else:
                service.enqueue_recovered(request)
                report.requeued += 1
        service.stats.recoveries += 1
        service.stats.recovered_requests = (
            report.finished + report.reconciled + report.requeued
        )
        report.problems = audit_cloud(cloud)
    get_hub().metrics.counter(
        "repro_service_recoveries_total", mode="warm"
    ).add(1)
    return service, report


def _effects_present(cloud: CloudManager, request: TenantRequest) -> bool:
    """Whether a pending intent's operation already ran (worker died
    between applying and journaling ``applied``)."""
    params = request.params
    if request.op == "boot":
        return params["name"] in cloud.vms
    if request.op == "stop":
        return params["name"] not in cloud.vms
    if request.op == "migrate":
        vm = cloud.vms.get(params["name"] or "")
        dest = params.get("dest")
        if vm is None or dest is None:
            return False
        return vm.hypervisor_name == dest
    if request.op == "evacuate":
        hyp = cloud.hypervisors.get(params["hypervisor"] or "")
        if hyp is None:
            return False
        return not list(hyp.running_vms())
    raise RecoveryError(f"unknown op {request.op!r} in journal")


def _reconstruct_applied(
    cloud: CloudManager, request: TenantRequest
) -> Dict[str, object]:
    """The ``applied`` payload a lost append would have carried, read
    back off the fabric."""
    params = request.params
    if request.op == "boot":
        vm = cloud.vms[params["name"]]
        return {
            "op": "boot",
            "vm": vm.name,
            "hypervisor": vm.hypervisor_name,
            "vf": vm.vf.name if vm.vf is not None else None,
            "lid": vm.lid,
            "reconciled": True,
        }
    if request.op == "stop":
        return {"op": "stop", "vm": params["name"], "reconciled": True}
    if request.op == "migrate":
        return {
            "op": "migrate",
            "vm": params["name"],
            "dest": params.get("dest"),
            "outcome": "completed",
            "reconciled": True,
        }
    return {
        "op": "evacuate",
        "hypervisor": params["hypervisor"],
        "migrations": [],
        "remaining": 0,
        "reconciled": True,
    }


def _restore_response(
    service: ControlPlaneService,
    request: TenantRequest,
    terminal: Optional[Dict[str, object]],
) -> None:
    """Rebuild the idempotency table for an already-terminal request so
    a client retrying it after the crash gets the original answer back
    instead of a second execution."""
    terminal = terminal or {}
    service._responses[request.request_id] = ServiceResponse(
        request_id=request.request_id,
        status=str(terminal.get("status") or "completed"),
        detail=str(terminal.get("detail") or "recovered terminal"),
    )


def _finish_applied(
    service: ControlPlaneService,
    request: TenantRequest,
    applied: Dict[str, object],
) -> None:
    """Close out a request whose op ran but whose terminal journal entry
    (and tenant response) was lost in the crash."""
    outcome = str(applied.get("outcome", "completed"))
    status = "completed" if outcome == "completed" else "failed"
    service._finish(
        request,
        ServiceResponse(
            request_id=request.request_id,
            status=status,
            detail=f"recovered: {outcome}",
        ),
        applied=True,
    )
    # The response was minted by recovery, not admission; account the
    # submission so the no-silent-drop ledger still balances.
    service.stats.submitted += 1


# -- cold rebuild ----------------------------------------------------------


def rebuild_from_journal(
    journal: IntentJournal,
    *,
    build_cloud: Optional[Callable[[Dict[str, object]], CloudManager]] = None,
    **service_kwargs: object,
) -> Tuple[CloudManager, ControlPlaneService, RecoveryReport]:
    """Cold rebuild: fresh fabric from genesis + full journal replay."""
    genesis = journal.genesis()
    if genesis is None:
        raise RecoveryError(
            "cold rebuild needs a genesis entry; this journal has none"
        )
    report = RecoveryReport(mode="cold", journal_entries=journal.head_seq)
    with span("service_recover", mode="cold"):
        cloud = (build_cloud or _build_cloud_from_genesis)(genesis)
        folded = journal.requests()
        ordered = sorted(
            (int(state["applied_seq"]), request_id)  # type: ignore[arg-type]
            for request_id, state in folded.items()
            if state["applied_seq"] is not None
        )
        for _, request_id in ordered:
            state = folded[request_id]
            request = TenantRequest.from_dict(state["intent"])  # type: ignore[arg-type]
            _replay_applied(cloud, request, state["applied"])  # type: ignore[arg-type]
            report.replayed += 1
        # The replayed journal IS the new service's journal; a recovered
        # worker keeps appending where the dead one stopped.
        service = ControlPlaneService(
            cloud, journal=journal, **service_kwargs  # type: ignore[arg-type]
        )
        for request_id, state in folded.items():
            phase = str(state["phase"])
            request = TenantRequest.from_dict(state["intent"])  # type: ignore[arg-type]
            if phase in ("completed", "aborted"):
                _restore_response(service, request, state["terminal"])  # type: ignore[arg-type]
                report.terminal_requests += 1
            elif phase == "applied":
                _finish_applied(service, request, state["applied"])  # type: ignore[arg-type]
                report.finished += 1
            else:
                service.enqueue_recovered(request)
                report.requeued += 1
        service.stats.recoveries += 1
        service.stats.recovered_requests = (
            report.finished + report.requeued + report.replayed
        )
        report.problems = audit_cloud(cloud)
    get_hub().metrics.counter(
        "repro_service_recoveries_total", mode="cold"
    ).add(1)
    return cloud, service, report


def _build_cloud_from_genesis(genesis: Dict[str, object]) -> CloudManager:
    """Reconstruct the fabric exactly as ``repro serve`` built it."""
    from repro.fabric.presets import scaled_fattree

    built = scaled_fattree(str(genesis["profile"]))
    cloud = CloudManager(
        built.topology,
        built=built,
        lid_scheme=str(genesis.get("scheme", "prepopulated")),
        routing_engine=str(genesis.get("engine", "minhop")),
        num_vfs=int(genesis.get("num_vfs", 4)),  # type: ignore[arg-type]
        placement=str(genesis.get("placement", "first-fit")),
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    return cloud


def _replay_applied(
    cloud: CloudManager,
    request: TenantRequest,
    applied: Dict[str, object],
) -> None:
    """Re-execute one applied operation on the rebuilt fabric.

    Operations that ended rolled-back or failed left no state in the
    original run (the PR 4 compensating-action guarantee) and are
    skipped; completed ones re-run with their recorded placement so the
    rebuilt state cannot diverge.
    """
    params = request.params
    try:
        if request.op == "boot":
            cloud.boot_vm(
                params["name"],
                on=str(applied.get("hypervisor")),
                tenant=request.tenant,
            )
        elif request.op == "stop":
            cloud.stop_vm(params["name"])
        elif request.op == "migrate":
            if applied.get("outcome") == "completed":
                dest = applied.get("dest") or params.get("dest")
                cloud.live_migrate(params["name"], str(dest))
        elif request.op == "evacuate":
            migrations = applied.get("migrations") or []
            for move in migrations:  # type: ignore[union-attr]
                if move.get("outcome") == "completed":  # type: ignore[union-attr]
                    cloud.live_migrate(
                        str(move["vm"]), str(move["dest"])  # type: ignore[index]
                    )
    except ReproError as exc:
        raise RecoveryError(
            f"replay of {request.request_id!r} ({request.op}) failed:"
            f" {exc}"
        ) from exc
