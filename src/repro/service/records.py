"""Versioned request/response records and tenant quotas.

Every tenant operation is a :class:`TenantRequest` — a frozen, versioned
record whose ``request_id`` doubles as the idempotency key (resubmitting
the same id returns the original response instead of double-booting).
The journal stores exactly these records, so a journal written by one
service version can be replayed by a later one as long as the record
``version`` is understood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import AdmissionError

__all__ = [
    "RECORD_VERSION",
    "REQUEST_OPS",
    "ServiceResponse",
    "TenantQuota",
    "TenantRequest",
]

#: Journal record schema version (bump on incompatible layout changes).
RECORD_VERSION = 1

#: Operations the control plane accepts.
REQUEST_OPS = ("boot", "stop", "migrate", "evacuate")

#: Response statuses a submitted request can end in. Every submitted
#: request reaches exactly one of these — there is no silent drop.
RESPONSE_STATUSES = (
    "accepted",  # admitted and queued (interim status)
    "completed",  # applied to the cloud
    "failed",  # applied but the operation itself failed permanently
    "rejected_quota",  # over the tenant's quota; retry after others stop
    "rejected_overload",  # queue full / service shedding; retry later
    "timed_out",  # deadline passed before the fabric could serve it
    "duplicate",  # idempotency-key replay of an earlier submission
)


@dataclass(frozen=True)
class TenantRequest:
    """One tenant intent, as journaled.

    ``params`` is op-specific: ``boot`` carries the service-assigned
    ``name`` (assigned at admission so replay is deterministic) and an
    optional ``on``; ``stop`` carries ``name``; ``migrate`` carries
    ``name`` and optional ``dest``; ``evacuate`` carries ``hypervisor``.
    """

    request_id: str
    tenant: str
    op: str
    params: Dict[str, Optional[str]] = field(default_factory=dict)
    submitted_at: float = 0.0
    deadline: Optional[float] = None
    version: int = RECORD_VERSION

    def __post_init__(self) -> None:
        if self.op not in REQUEST_OPS:
            raise AdmissionError(
                f"unknown op {self.op!r}; choose one of {REQUEST_OPS}"
            )
        if not self.tenant:
            raise AdmissionError("requests must name a tenant")

    def as_dict(self) -> Dict[str, object]:
        """Journal payload form (plain JSON-able types only)."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "op": self.op,
            "params": dict(self.params),
            "submitted_at": self.submitted_at,
            "deadline": self.deadline,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantRequest":
        """Inverse of :meth:`as_dict` (journal load / replay)."""
        return cls(
            request_id=str(data["request_id"]),
            tenant=str(data["tenant"]),
            op=str(data["op"]),
            params=dict(data.get("params") or {}),  # type: ignore[arg-type]
            submitted_at=float(data.get("submitted_at") or 0.0),
            deadline=(
                None
                if data.get("deadline") is None
                else float(data["deadline"])  # type: ignore[arg-type]
            ),
            version=int(data.get("version") or RECORD_VERSION),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """What the tenant hears back. Never silent: rejections carry a
    deterministic ``retry_after_s`` hint computed from queue depth and
    observed sweep latency."""

    request_id: str
    status: str
    detail: str = ""
    retry_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise AdmissionError(f"unknown response status {self.status!r}")

    @property
    def ok(self) -> bool:
        """True for terminal success."""
        return self.status == "completed"

    @property
    def retryable(self) -> bool:
        """True when resubmitting later can succeed."""
        return self.status in (
            "rejected_quota",
            "rejected_overload",
            "timed_out",
        )


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource ceilings enforced at admission.

    ``max_vms`` counts running VMs plus queued boots; ``max_vfs`` is the
    VF ceiling (a migration transiently holds a destination VF, so it
    counts against headroom while in flight); ``max_migrations_in_flight``
    bounds queued-or-executing migrations and evacuations.
    """

    max_vms: int = 8
    max_vfs: int = 8
    max_migrations_in_flight: int = 4

    def __post_init__(self) -> None:
        if self.max_vms < 0 or self.max_vfs < 0:
            raise AdmissionError("quota ceilings must be >= 0")
        if self.max_migrations_in_flight < 0:
            raise AdmissionError("max_migrations_in_flight must be >= 0")
