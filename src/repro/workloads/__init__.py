"""Workload generators: VM churn, migration patterns, traffic placement."""

from repro.workloads.chaos import ChaosReport, ChaosRunner
from repro.workloads.churn import ChurnReport, ChurnWorkload
from repro.workloads.migration_patterns import (
    ANY,
    INTER_POD,
    INTRA_LEAF,
    INTRA_POD,
    MigrationPlanner,
)
from repro.workloads.scenario import Scenario, ScenarioSummary
from repro.workloads.traffic import LinkLoadReport, all_to_all_flows, link_loads

__all__ = [
    "ChaosReport",
    "ChaosRunner",
    "ChurnReport",
    "ChurnWorkload",
    "MigrationPlanner",
    "INTRA_LEAF",
    "INTRA_POD",
    "INTER_POD",
    "ANY",
    "Scenario",
    "ScenarioSummary",
    "LinkLoadReport",
    "all_to_all_flows",
    "link_loads",
]
