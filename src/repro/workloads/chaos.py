"""Chaos runs: churn and migrations on a fabric that keeps breaking.

The chaos runner is the integration point of the fault-injection layer:
it drives a :class:`~repro.virt.cloud.CloudManager` through boot/stop/
migrate steps while a :class:`~repro.faults.injector.FaultInjector`
drops, corrupts and delays SMPs in flight, and while fabric-level events
— link flaps through the :class:`~repro.sm.traps.FabricEventManager`,
spine-switch deaths, the master SM dying mid-reconfiguration — hit the
control plane. At the end it audits the subnet with
:func:`~repro.analysis.verification.verify_subnet`: the run *passes*
only if, despite everything, the forwarding state is exactly what a
fault-free control plane would have produced.

Two cost ledgers make the paper's argument measurable under faults:

* **achieved vs ideal SMPs** — each migration's actual LFT SMP count
  (retransmissions included) against the n'·m' the
  :class:`~repro.core.reconfig.VSwitchReconfigurer` predictors say a
  lossless fabric would need;
* **downtime inflation** — how much of the total VM downtime is MAD
  retry backoff (``retry_wait_seconds``) rather than useful work.

Determinism: all randomness comes from two seeded streams — the
injector's SMP stream and its ``fabric_rng`` for event scheduling — plus
the churn RNG, all derived from the plan seed, so a chaos run replays
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DistributionError,
    ReproError,
    SimulationError,
    TopologyError,
    TransportError,
)
from repro.fabric.node import Switch
from repro.fabric.topology import TopologyMutation
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import RetryPolicy
from repro.obs.hub import get_hub, span
from repro.sm.ha import HighAvailabilityManager
from repro.sm.traps import FabricEventManager
from repro.telemetry.analytics import CongestionDetector, top_talkers
from repro.telemetry.harness import TelemetryHarness
from repro.telemetry.perf import PerfManager
from repro.virt.cloud import CloudManager
from repro.workloads.churn import ChurnReport, ChurnWorkload

__all__ = ["ChaosReport", "ChaosTelemetry", "ChaosRunner"]


@dataclass
class ChaosTelemetry:
    """Fabric-telemetry rows of one chaos run (opt-in via ``telemetry=True``).

    Populated by measured traffic bursts between chaos steps, PerfManager
    sweeps through the (faulty) MAD plane, and the congestion detector;
    the flap rows isolate what the flapped links' own ports recorded.
    """

    bursts: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    hoq_discards: int = 0
    unroutable_discards: int = 0
    xmit_wait_seconds: float = 0.0
    #: Discards / wait observed on the switch ports of flapped links.
    flapped_port_discards: int = 0
    flapped_port_wait_seconds: float = 0.0
    sweeps: int = 0
    sweep_smps: int = 0
    sweep_misses: int = 0
    congestion_events: int = 0
    congestion_seconds: float = 0.0
    peak_utilization: float = 0.0
    #: Hottest link seen in a sweep right after a completed migration.
    peak_migration_utilization: float = 0.0
    matrix_endpoints: int = 0
    matrix_total: int = 0
    matrix_consistent: bool = False

    def render_lines(self) -> List[str]:
        """The telemetry rows of :meth:`ChaosReport.render`."""
        return [
            (
                f"telemetry: {self.bursts} bursts"
                f" ({self.packets_injected} injected,"
                f" {self.packets_delivered} delivered);"
                f" discards hoq={self.hoq_discards}"
                f" unroutable={self.unroutable_discards};"
                f" xmit-wait {self.xmit_wait_seconds * 1e3:.3f}ms"
            ),
            (
                f"telemetry flap windows: {self.flapped_port_discards}"
                f" discards, {self.flapped_port_wait_seconds * 1e3:.3f}ms"
                f" wait on flapped ports"
            ),
            (
                f"telemetry sweeps: {self.sweeps}"
                f" ({self.sweep_smps} SMPs, {self.sweep_misses} misses);"
                f" congestion: {self.congestion_events} events,"
                f" {self.congestion_seconds * 1e3:.3f}ms;"
                f" peak util {self.peak_utilization:.1%}"
                f" (post-migration {self.peak_migration_utilization:.1%})"
            ),
            (
                f"telemetry matrix: {self.matrix_endpoints} endpoints,"
                f" {self.matrix_total} delivered packets"
                f" (row sums"
                f" {'consistent' if self.matrix_consistent else 'INCONSISTENT'})"
            ),
        ]


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    steps: int = 0
    plan: str = ""
    #: Boot/stop/migration outcomes (shared shape with plain churn runs).
    churn: ChurnReport = field(default_factory=ChurnReport)
    #: Fabric events performed / refused (refusals: the event would have
    #: partitioned the fabric, so the SM declined it).
    link_flaps: int = 0
    refused_link_flaps: int = 0
    switch_failures: int = 0
    refused_switch_failures: int = 0
    sm_failovers: int = 0
    #: Master SM deaths injected (each should produce one failover).
    sm_deaths: int = 0
    #: Management-plane partitions injected (and later healed).
    partitions: int = 0
    #: Fenced writes the fabric rejected as stale (split-brain fencing
    #: doing its job — every one of these is a write a stale master was
    #: NOT allowed to apply).
    stale_writes_rejected: int = 0
    #: Stale masters demoted after losing the SMInfo comparison.
    sm_demotions: int = 0
    #: Steps the workload sat out because no alive master existed (the
    #: window between a master death and the standby's lease expiry).
    stalled_steps: int = 0
    #: Which sweep the last failover paid ("light"/"heavy") and its
    #: handshake cost — the headline HA economics.
    failover_sweep_mode: str = ""
    failover_handshake_smps: int = 0
    journal_entries_replayed: int = 0
    #: Trap-pipeline pressure: injected flap storms and how the bounded
    #: VL15 queue absorbed them.
    trap_storms: int = 0
    coalesced_traps: int = 0
    throttled_traps: int = 0
    #: Live topology mutations performed by the ``rewire`` knob, and the
    #: ones the planner could not place (no viable candidate) or the SM
    #: refused.
    rewires: int = 0
    refused_rewires: int = 0
    #: Mutations performed, by kind (``add_link``, ``remove_switch``, ...).
    rewire_kinds: Dict[str, int] = field(default_factory=dict)
    #: How the routing cache absorbed each rewire's recompute.
    rewire_repair_incremental: int = 0
    rewire_repair_full: int = 0
    rewire_repair_warm: int = 0
    #: BFS source trees reswept across all incremental rewire repairs.
    rewire_sources_repaired: int = 0
    #: Problems found by the per-mutation convergence audit (one
    #: ``verify_subnet`` after every rewire) — must stay empty.
    rewire_audit_failures: List[str] = field(default_factory=list)
    #: Whether the final routing equals a cold from-scratch recompute
    #: byte-for-byte (None when no rewires ran).
    final_routing_cold_identical: Optional[bool] = None
    #: LFT SMPs spent reacting to fabric events (the *legitimate* heavy
    #: reconfigurations, kept apart from the migration ledger).
    reroute_smps: int = 0
    #: Migration SMP ledger: what a lossless fabric would have needed
    #: (the predictors' n'·m') vs what was actually sent, retries and all.
    ideal_migration_smps: int = 0
    achieved_migration_smps: int = 0
    #: Downtime ledger across completed migrations.
    total_downtime_seconds: float = 0.0
    retry_wait_seconds: float = 0.0
    smp_retries: int = 0
    smp_timeouts: int = 0
    #: Injector decision counts by action.
    fault_summary: Dict[str, int] = field(default_factory=dict)
    #: Control-plane operations that failed even after retries/rollback.
    control_plane_errors: List[str] = field(default_factory=list)
    #: Final subnet audit (populated once ``verified`` is True).
    verified: bool = False
    verification_failures: List[str] = field(default_factory=list)
    #: Fabric telemetry rows (None unless the runner ran with telemetry).
    telemetry: Optional[ChaosTelemetry] = None

    @property
    def ok(self) -> bool:
        """True iff the end-state audit ran and found nothing wrong."""
        return (
            self.verified
            and not self.verification_failures
            and not self.rewire_audit_failures
            and self.final_routing_cold_identical is not False
        )

    @property
    def smp_overhead_ratio(self) -> float:
        """achieved / ideal migration SMPs (1.0 on a lossless fabric)."""
        if not self.ideal_migration_smps:
            return 1.0
        return self.achieved_migration_smps / self.ideal_migration_smps

    @property
    def downtime_inflation(self) -> float:
        """Fraction of total migration downtime that was retry backoff."""
        if not self.total_downtime_seconds:
            return 0.0
        return self.retry_wait_seconds / self.total_downtime_seconds

    def render(self, *, max_problems: int = 10) -> str:
        """Human-readable run summary (the ``repro chaos`` output)."""
        c = self.churn
        lines = [
            f"chaos: {self.steps} steps [{self.plan}]",
            (
                f"workload: {c.boots} boots ({c.failed_boots} failed),"
                f" {c.stops} stops, {c.migrations} migrations"
                f" ({c.rolled_back_migrations} rolled back,"
                f" {c.failed_migrations} failed)"
                + (
                    f"; admission: {c.rejected_quota} quota,"
                    f" {c.rejected_overload} overload,"
                    f" {c.timed_out_requests} timed out"
                    if c.rejected_quota
                    or c.rejected_overload
                    or c.timed_out_requests
                    else ""
                )
            ),
            (
                f"fabric: {self.link_flaps} link flaps"
                f" ({self.refused_link_flaps} refused),"
                f" {self.switch_failures} switch failures"
                f" ({self.refused_switch_failures} refused),"
                f" {self.sm_failovers} SM failovers"
            ),
            (
                f"ha: {self.sm_deaths} SM deaths, {self.partitions}"
                f" partitions, {self.stale_writes_rejected} stale writes"
                f" fenced, {self.sm_demotions} demotions,"
                f" {self.stalled_steps} masterless steps"
                + (
                    f"; failover sweep={self.failover_sweep_mode}"
                    f" (handshake {self.failover_handshake_smps} SMPs,"
                    f" {self.journal_entries_replayed} journal entries)"
                    if self.failover_sweep_mode
                    else ""
                )
            ),
            (
                f"traps: {self.trap_storms} storms,"
                f" {self.coalesced_traps} coalesced,"
                f" {self.throttled_traps} throttled"
            ),
        ]
        if self.rewires or self.refused_rewires:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.rewire_kinds.items())
            )
            lines.append(
                f"rewires: {self.rewires} performed"
                f" ({self.refused_rewires} refused)"
                + (f" [{kinds}]" if kinds else "")
                + f"; repair incremental={self.rewire_repair_incremental}"
                f" full={self.rewire_repair_full}"
                f" warm={self.rewire_repair_warm}"
                f" ({self.rewire_sources_repaired} sources reswept)"
            )
            if self.final_routing_cold_identical is not None:
                lines.append(
                    "final routing vs cold recompute: "
                    + (
                        "byte-identical"
                        if self.final_routing_cold_identical
                        else "DIVERGED"
                    )
                )
            if self.rewire_audit_failures:
                lines.append(
                    f"rewire audits: FAILED"
                    f" ({len(self.rewire_audit_failures)} problems)"
                )
                lines.extend(
                    f"  {p}"
                    for p in self.rewire_audit_failures[:max_problems]
                )
            else:
                lines.append(
                    "rewire audits: clean (every mutation converged)"
                )
        lines += [
            (
                f"migration SMPs: ideal n'*m'={self.ideal_migration_smps},"
                f" achieved={self.achieved_migration_smps}"
                f" ({self.smp_overhead_ratio:.2f}x);"
                f" reroute SMPs={self.reroute_smps}"
            ),
            (
                f"transport: {self.smp_retries} retries,"
                f" {self.smp_timeouts} timeouts,"
                f" retry wait {self.retry_wait_seconds * 1e3:.3f}ms"
                f" ({self.downtime_inflation:.1%} of"
                f" {self.total_downtime_seconds * 1e3:.3f}ms downtime)"
            ),
            "faults injected: "
            + ", ".join(
                f"{action}={count}"
                for action, count in self.fault_summary.items()
                if action != "deliver"
            ),
        ]
        if self.telemetry is not None:
            lines.extend(self.telemetry.render_lines())
        if self.control_plane_errors:
            lines.append(
                f"control-plane errors: {len(self.control_plane_errors)}"
            )
            lines.extend(
                f"  {err}" for err in self.control_plane_errors[:max_problems]
            )
        if not self.verified:
            lines.append("verification: NOT RUN")
        elif self.verification_failures:
            lines.append(
                f"verification: FAILED"
                f" ({len(self.verification_failures)} problems)"
            )
            lines.extend(
                f"  {p}"
                for p in self.verification_failures[:max_problems]
            )
        else:
            lines.append("verification: clean (forwarding state exact)")
        return "\n".join(lines)


class ChaosRunner:
    """Drive one cloud through a fault plan and audit the wreckage."""

    def __init__(
        self,
        cloud: CloudManager,
        plan: FaultPlan,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        resilient: bool = True,
        migrate_probability: float = 0.25,
        target_utilization: float = 0.5,
        telemetry: bool = False,
        telemetry_interval: int = 4,
        telemetry_endpoints: int = 8,
    ) -> None:
        self.cloud = cloud
        self.sm = cloud.sm
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.events = FabricEventManager(self.sm)
        self.ha = HighAvailabilityManager(self.sm)
        #: Compat alias — callers used to reach the redundancy stub here.
        self.redundancy = self.ha
        self.migrate_probability = migrate_probability
        #: Reused for its boot/stop mechanics and failure accounting; the
        #: chaos runner makes the per-step decisions itself.
        self.churn = ChurnWorkload(
            cloud, seed=plan.seed, target_utilization=target_utilization
        )
        if resilient:
            self.sm.enable_resilience(retry_policy, transactional=True)
        #: Telemetry mode: PerfManager sweeps + measured bursts between
        #: steps, and flap windows observed through the flapped ports'
        #: own counters. Built after ``enable_resilience`` so sweep MADs
        #: go through the retrying sender (``sm.smp_sender``).
        self.telemetry_enabled = telemetry
        self.perf: Optional[PerfManager] = None
        self.detector: Optional[CongestionDetector] = None
        self.harness: Optional[TelemetryHarness] = None
        self._telemetry_interval = max(1, telemetry_interval)
        #: (switch name, port) pairs of successfully flapped link ends.
        self._flapped_ports: List[Tuple[str, int]] = []
        if telemetry:
            self.perf = PerfManager(self.sm)
            self.detector = CongestionDetector(self.events)
            self.harness = TelemetryHarness(
                self.sm,
                perf=self.perf,
                max_endpoints=telemetry_endpoints,
                channel_credits=1,
            )
        self._register_sm_candidates()
        #: Step at which the current partition heals (None = no partition
        #: in flight) and who was cut off.
        self._heal_step: Optional[int] = None
        self._partitioned_master: Optional[str] = None
        #: Rewire state: mutations per step (filled by :meth:`run` from
        #: ``plan.rewire_ops``), restore candidates for cables a rewire
        #: removed, names of switches a rewire added (preferred removal
        #: victims), and a monotonic sequence for generated names.
        self._rewire_counts: Dict[int, int] = {}
        self._removed_cables: List[TopologyMutation] = []
        self._added_switches: List[str] = []
        self._rewire_seq = 0

    def _register_sm_candidates(self) -> None:
        """Master on the current SM node, two standbys elsewhere.

        Two standbys (not one) so the HA protocol survives a master
        death *followed by* a partition of the successor: the second
        standby is what supersedes the partitioned master and arms the
        fence against it.
        """
        master_node = self.sm.transport.sm_node
        self.ha.register(
            master_node.name,
            getattr(master_node, "node_guid", None)
            or self.cloud.guids.allocate_virtual(),
            priority=10,
        )
        priority = 5
        for hca in reversed(self.sm.topology.hcas):
            if hca is master_node:
                continue
            self.ha.register(
                hca.name,
                getattr(hca, "node_guid", None)
                or self.cloud.guids.allocate_virtual(),
                priority=priority,
            )
            priority -= 4
            if priority < 0:
                break
        self.ha.bootstrap()

    # -- the run ------------------------------------------------------------

    def run(self, steps: int) -> ChaosReport:
        """Perform *steps* chaos steps, then audit the subnet."""
        report = ChaosReport(steps=steps, plan=self.plan.describe())
        if self.telemetry_enabled:
            report.telemetry = ChaosTelemetry()
        # Spread rewire ops evenly over the run (deterministic schedule;
        # only the mutation *choice* comes from the fabric RNG).
        self._rewire_counts = {}
        for i in range(self.plan.rewire_ops):
            at = int((i + 1) * steps / (self.plan.rewire_ops + 1))
            at = min(at, max(steps - 1, 0))
            self._rewire_counts[at] = self._rewire_counts.get(at, 0) + 1
        transport = self.sm.transport
        if self.plan.injects_smp_faults:
            transport.set_fault_injector(self.injector)
        run_before = transport.stats.snapshot()
        try:
            with span(
                "chaos_run", steps=steps, plan=self.plan.describe()
            ):
                for step in range(steps):
                    self._step(step, report)
        finally:
            transport.set_fault_injector(None)
        run_delta = transport.stats.delta_since(run_before)
        report.smp_retries = run_delta.retransmissions
        report.smp_timeouts = run_delta.timeouts
        report.retry_wait_seconds = run_delta.retry_wait_seconds
        report.fault_summary = self.injector.summary()
        report.coalesced_traps = self.events.traps_coalesced
        report.throttled_traps = self.events.traps_throttled
        if report.rewires:
            self._final_cold_check(report)
        if report.telemetry is not None:
            self._finalize_telemetry(report)
        self._verify(report)
        self._expose(report)
        return report

    def _step(self, step: int, report: ChaosReport) -> None:
        if (
            self.plan.sm_death_step is not None
            and step == self.plan.sm_death_step
        ):
            self._sm_death(step, report)
        if (
            self.plan.partition_step is not None
            and step == self.plan.partition_step
        ):
            self._partition(step, report)
        if self._heal_step is not None and step == self._heal_step:
            self._heal_partition(report)
        if (
            self.plan.link_flap_storm_step is not None
            and step == self.plan.link_flap_storm_step
        ):
            self._link_flap_storm(step, report)
        for _ in range(self._rewire_counts.get(step, 0)):
            self._rewire(report)
        self._ha_tick(report)
        frng = self.injector.fabric_rng
        if self.plan.link_flap_rate and frng.random() < self.plan.link_flap_rate:
            self._link_flap(report)
        if (
            self.plan.switch_failure_rate
            and frng.random() < self.plan.switch_failure_rate
        ):
            self._switch_failure(report)
        if self.ha.has_master:
            self._workload_step(report)
        else:
            # Nobody is master: migrations/boots would go unrouted. The
            # cloud stalls until the lease protocol elects a successor.
            report.stalled_steps += 1
        if (
            self.telemetry_enabled
            and step % self._telemetry_interval == 0
        ):
            self._telemetry_tick(report)

    # -- workload -----------------------------------------------------------

    def _workload_step(self, report: ChaosReport) -> None:
        rng = self.churn.rng
        if (
            self.migrate_probability
            and rng.random() < self.migrate_probability
        ):
            self._migrate(report)
            return
        cap = self.cloud.total_capacity
        running = self.cloud.running_vm_count
        utilization = running / cap if cap else 1.0
        boot_bias = (
            0.9 if utilization < self.churn.target_utilization else 0.1
        )
        if running == 0 or rng.random() < boot_bias:
            self.churn._boot(report.churn)
        else:
            self.churn._stop(report.churn)

    def _migrate(self, report: ChaosReport) -> None:
        rng = self.churn.rng
        running = [vm for vm in self.cloud.vms.values() if vm.is_running]
        if not running:
            return
        vm = rng.choice(running)
        candidates = [
            h
            for h in self.cloud.hypervisors.values()
            if h.name != vm.hypervisor_name and h.has_capacity()
        ]
        if not candidates:
            return
        dest = rng.choice(candidates)
        ideal = self._predict_ideal_smps(vm, dest)
        before = self.sm.transport.stats.snapshot()
        outcome = self.cloud.live_migrate(vm.name, dest.name)
        delta = self.sm.transport.stats.delta_since(before)
        report.churn.migrations += 1
        report.total_downtime_seconds += outcome.downtime_seconds
        if outcome.outcome == "rolled_back":
            report.churn.rolled_back_migrations += 1
        elif outcome.outcome == "failed":
            report.churn.failed_migrations += 1
            report.control_plane_errors.append(
                f"migration {vm.name}: {outcome.failure}"
            )
        else:
            report.ideal_migration_smps += ideal
            report.achieved_migration_smps += delta.lft_update_smps
            if self.telemetry_enabled:
                # Measure the fabric right after the move: the planner
                # item wants post-migration hot-link evidence.
                self._telemetry_tick(report, migration=True)

    def _predict_ideal_smps(self, vm, dest) -> int:
        """The lossless n'·m' cost of the migration about to run."""
        reconfigurer = self.cloud.scheme.reconfigurer
        vm_lid = vm.vf.lid
        if self.cloud.scheme.name == "prepopulated":
            dest_vf = dest.vswitch.first_free_vf()
            if dest_vf.lid is None:
                return 0
            return reconfigurer.predict_swap(vm_lid, dest_vf.lid)[1]
        dest_pf_lid = dest.vswitch.pf_lid
        if dest_pf_lid is None:
            return 0
        return reconfigurer.predict_copy(dest_pf_lid, vm_lid)[1]

    # -- fabric events -------------------------------------------------------

    def _link_flap(self, report: ChaosReport) -> None:
        frng = self.injector.fabric_rng
        links = [
            link
            for link in self.sm.topology.links
            if all(isinstance(p.node, Switch) for p in link.ends)
        ]
        if not links:
            return
        link = frng.choice(links)
        if self.telemetry_enabled:
            self._telemetry_link_flap(report, link)
            return
        end_a, end_b = link.ends
        a, pa = end_a.node, end_a.num
        b, pb = end_b.node, end_b.num
        before = self.sm.transport.stats.snapshot()
        with span("link_flap", a=a.name, b=b.name) as sp:
            try:
                self.events.link_down(link)
            except TopologyError:
                # The cut would have partitioned the fabric: the SM
                # refuses; replug the cable and re-converge.
                sp.set_attribute("refused", True)
                self._recover(report, lambda: self.events.link_up(a, pa, b, pb))
                report.refused_link_flaps += 1
                return
            except (TransportError, DistributionError) as exc:
                report.control_plane_errors.append(f"link flap down: {exc}")
                self._recover(report, self.sm.distribute)
            self._recover(
                report,
                lambda: self.events.link_up(a, pa, b, pb),
                label="link flap up",
            )
        delta = self.sm.transport.stats.delta_since(before)
        report.link_flaps += 1
        report.reroute_smps += delta.lft_update_smps
        get_hub().metrics.counter("repro_chaos_link_flaps_total").add(1)

    # -- telemetry mode ------------------------------------------------------

    def _telemetry_link_flap(self, report: ChaosReport, link) -> None:
        """Flap a link *observably*: traffic runs while it is down.

        Uses the deferred trap path so there is a real blackhole window:
        after :meth:`report_link_down` the LFTs still point at the dead
        port until the pump reroutes. A burst run inside that window
        charges xmit-wait (one HOQ lifetime per head-of-queue packet)
        and unroutable discards to the flapped ports themselves — the
        PMA-visible signature of a flap the acceptance gate checks.
        """
        end_a, end_b = link.ends
        a, pa = end_a.node, end_a.num
        b, pb = end_b.node, end_b.num
        before = self.sm.transport.stats.snapshot()
        with span(
            "link_flap", a=a.name, b=b.name, telemetry=True
        ) as sp:
            try:
                self.events.report_link_down(link)
            except TopologyError:
                # Cut would partition: refused with the cable replugged.
                sp.set_attribute("refused", True)
                report.refused_link_flaps += 1
                return
            self._flapped_ports.extend([(a.name, pa), (b.name, pb)])
            self._telemetry_burst(report)
            self._recover(
                report,
                lambda: self.events.pump(force=True),
                label="flap reroute",
            )
            self._recover(
                report,
                lambda: self.events.report_link_up(a, pa, b, pb),
                label="link flap up",
            )
            self._recover(
                report,
                lambda: self.events.pump(force=True),
                label="flap-up reroute",
            )
        delta = self.sm.transport.stats.delta_since(before)
        report.link_flaps += 1
        report.reroute_smps += delta.lft_update_smps
        get_hub().metrics.counter("repro_chaos_link_flaps_total").add(1)
        # Sweep right away so the flap window's counters (and any
        # congestion events they imply) land in the store this step.
        self._telemetry_observe(report)

    def _telemetry_tick(
        self, report: ChaosReport, *, migration: bool = False
    ) -> None:
        """One burst + sweep + congestion scan (the periodic tick)."""
        if report.telemetry is None or self.harness is None:
            return
        self._telemetry_burst(report)
        self._telemetry_observe(report, migration=migration)

    def _telemetry_burst(self, report: ChaosReport):
        """Run one measured burst; ledger its packets. Returns stats."""
        tel = report.telemetry
        try:
            stats = self.harness.burst()
        except (ReproError, SimulationError) as exc:
            report.control_plane_errors.append(f"telemetry burst: {exc}")
            return None
        tel.bursts += 1
        tel.packets_injected += stats.injected
        tel.packets_delivered += stats.delivered
        return stats

    def _telemetry_observe(
        self, report: ChaosReport, *, migration: bool = False
    ) -> None:
        """Sweep the counters and scan them for congestion."""
        tel = report.telemetry
        try:
            sweep = self.harness.sweep()
        except (TransportError, DistributionError) as exc:
            report.control_plane_errors.append(f"telemetry sweep: {exc}")
            return
        tel.sweeps += 1
        tel.sweep_smps += sweep.smps
        tel.sweep_misses += len(sweep.missed)
        self.detector.scan(self.harness.store)
        hot = top_talkers(self.harness.store, top=1)
        utilization = hot[0].utilization if hot else 0.0
        tel.peak_utilization = max(tel.peak_utilization, utilization)
        if migration:
            tel.peak_migration_utilization = max(
                tel.peak_migration_utilization, utilization
            )

    def _finalize_telemetry(self, report: ChaosReport) -> None:
        """Fold the run's counters/matrix into the telemetry rows."""
        tel = report.telemetry
        topo = self.sm.topology
        for sw in topo.switches:
            for num in sorted(sw.counters):
                if num < 1:
                    # Port 0 is the switch's MAD endpoint, not a link.
                    continue
                pc = sw.counters[num]
                tel.hoq_discards += pc.hoq_discards
                tel.unroutable_discards += pc.unroutable_discards
                tel.xmit_wait_seconds += pc.xmit_wait / 1e9
        seen = set()
        for name, port in self._flapped_ports:
            if (name, port) in seen:
                continue
            seen.add((name, port))
            try:
                pc = topo.node(name).port_counters(port)
            except TopologyError:
                # The switch died in a later switch-failure event.
                continue
            tel.flapped_port_discards += (
                pc.hoq_discards + pc.unroutable_discards
            )
            tel.flapped_port_wait_seconds += pc.xmit_wait / 1e9
        if self.harness is not None:
            tel.matrix_endpoints = len(self.harness.matrix.endpoints)
            tel.matrix_total = self.harness.matrix.total
            tel.matrix_consistent = self.harness.verify_matrix()
        tel.congestion_events = len(self.events.congestion_events)
        if self.detector is not None:
            tel.congestion_seconds = self.detector.congestion_seconds

    def _switch_failure(self, report: ChaosReport) -> None:
        frng = self.injector.fabric_rng
        safe = [
            sw
            for sw in self.sm.topology.switches
            if not sw.attached_hcas() and not self._would_partition(sw)
        ]
        if not safe:
            report.refused_switch_failures += 1
            return
        victim = frng.choice(safe)
        before = self.sm.transport.stats.snapshot()
        with span("switch_failure", switch=victim.name):
            self._recover(
                report,
                lambda: self.sm.handle_switch_failure(victim),
                label=f"switch failure {victim.name}",
            )
        delta = self.sm.transport.stats.delta_since(before)
        report.switch_failures += 1
        report.reroute_smps += delta.lft_update_smps
        get_hub().metrics.counter("repro_chaos_switch_failures_total").add(1)

    def _would_partition(self, dead: Switch) -> bool:
        """Whether removing *dead* disconnects the remaining switch graph."""
        remaining = [
            sw for sw in self.sm.topology.switches if sw is not dead
        ]
        if not remaining:
            return True
        adjacency: Dict[str, set] = {sw.name: set() for sw in remaining}
        for link in self.sm.topology.links:
            end_a, end_b = link.ends
            if (
                isinstance(end_a.node, Switch)
                and isinstance(end_b.node, Switch)
                and end_a.node is not dead
                and end_b.node is not dead
            ):
                adjacency[end_a.node.name].add(end_b.node.name)
                adjacency[end_b.node.name].add(end_a.node.name)
        seen = {remaining[0].name}
        stack = [remaining[0].name]
        while stack:
            for peer in adjacency[stack.pop()]:
                if peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        return len(seen) != len(remaining)

    def _link_would_partition(self, link) -> bool:
        """Whether cutting *link* disconnects the switch graph."""
        switches = self.sm.topology.switches
        if len(switches) < 2:
            return True
        adjacency: Dict[str, set] = {sw.name: set() for sw in switches}
        for other in self.sm.topology.links:
            if other is link:
                continue
            end_a, end_b = other.ends
            if isinstance(end_a.node, Switch) and isinstance(
                end_b.node, Switch
            ):
                adjacency[end_a.node.name].add(end_b.node.name)
                adjacency[end_b.node.name].add(end_a.node.name)
        seen = {switches[0].name}
        stack = [switches[0].name]
        while stack:
            for peer in adjacency[stack.pop()]:
                if peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        return len(seen) != len(switches)

    # -- live rewiring (the rewire knob) --------------------------------------

    def _rewire(self, report: ChaosReport) -> None:
        """Perform one live topology mutation and audit its convergence."""
        mutation = self._plan_rewire()
        if mutation is None:
            # No viable candidate of any kind (e.g. every removal would
            # partition and every port is cabled).
            report.refused_rewires += 1
            return
        before = self.sm.transport.stats.snapshot()
        change = None
        with span(
            "rewire", kind=mutation.kind, detail=mutation.describe()
        ) as sp:
            try:
                change = self.sm.handle_topology_change(
                    mutation, verify=False
                )
            except TopologyError as exc:
                sp.set_attribute("refused", True)
                report.refused_rewires += 1
                report.control_plane_errors.append(
                    f"rewire {mutation.describe()}: {exc}"
                )
                return
            except (TransportError, DistributionError) as exc:
                report.control_plane_errors.append(
                    f"rewire {mutation.describe()}: {exc}"
                )
                self._recover(
                    report, self.sm.distribute, label="rewire repair"
                )
        self._note_rewire_pools(mutation)
        delta = self.sm.transport.stats.delta_since(before)
        report.rewires += 1
        report.rewire_kinds[mutation.kind] = (
            report.rewire_kinds.get(mutation.kind, 0) + 1
        )
        report.reroute_smps += delta.lft_update_smps
        if change is not None:
            if change.repair_mode == "incremental":
                report.rewire_repair_incremental += 1
            elif change.repair_mode == "full":
                report.rewire_repair_full += 1
            elif change.repair_mode == "warm":
                report.rewire_repair_warm += 1
            report.rewire_sources_repaired += change.sources_repaired
        get_hub().metrics.counter(
            "repro_chaos_rewires_total", kind=mutation.kind
        ).add(1)
        # Convergence audit after EVERY mutation: delivery walked on the
        # hardware LFTs and SM-consistency checked, not just at run end.
        from repro.analysis.verification import verify_subnet

        audit = verify_subnet(self.sm)
        for problem in audit.problems():
            report.rewire_audit_failures.append(
                f"{mutation.describe()}: {problem}"
            )

    def _note_rewire_pools(self, mutation: TopologyMutation) -> None:
        """Track inverse-operation candidates for later rewires."""
        if mutation.kind == "remove_link":
            self._removed_cables.append(
                TopologyMutation(
                    kind="restore_link",
                    a=mutation.a,
                    port_a=mutation.port_a,
                    b=mutation.b,
                    port_b=mutation.port_b,
                )
            )
        elif mutation.kind == "add_switch":
            self._added_switches.append(mutation.a)
        elif mutation.kind == "remove_switch":
            if mutation.a in self._added_switches:
                self._added_switches.remove(mutation.a)

    def _plan_rewire(self) -> Optional[TopologyMutation]:
        """Pick the next mutation from the fabric RNG stream.

        Draws the preferred kind first, then rotates through the others
        until one has a viable candidate, so a single exhausted pool
        (e.g. nothing left to restore) never wastes a scheduled op.
        """
        frng = self.injector.fabric_rng
        planners = (
            self._plan_add_link,
            self._plan_remove_link,
            self._plan_restore_link,
            self._plan_add_switch,
            self._plan_remove_switch,
        )
        start = frng.randrange(len(planners))
        for offset in range(len(planners)):
            mutation = planners[(start + offset) % len(planners)]()
            if mutation is not None:
                return mutation
        return None

    def _plan_add_link(self) -> Optional[TopologyMutation]:
        """A new cable between two non-adjacent switches with free ports."""
        topology = self.sm.topology
        adjacent = set()
        for link in topology.links:
            end_a, end_b = link.ends
            if isinstance(end_a.node, Switch) and isinstance(
                end_b.node, Switch
            ):
                pair = tuple(sorted((end_a.node.name, end_b.node.name)))
                adjacent.add(pair)
        open_switches = [
            sw
            for sw in topology.switches
            if next(sw.free_ports(), None) is not None
        ]
        pairs = [
            (a, b)
            for i, a in enumerate(open_switches)
            for b in open_switches[i + 1 :]
            if tuple(sorted((a.name, b.name))) not in adjacent
        ]
        if not pairs:
            return None
        a, b = self.injector.fabric_rng.choice(pairs)
        return TopologyMutation(
            kind="add_link",
            a=a.name,
            port_a=next(a.free_ports()).num,
            b=b.name,
            port_b=next(b.free_ports()).num,
        )

    def _plan_remove_link(self) -> Optional[TopologyMutation]:
        """A removable inter-switch cable (no partition, ends keep >1 cable)."""
        candidates = [
            link
            for link in self.sm.topology.links
            if all(isinstance(p.node, Switch) for p in link.ends)
            and not self._link_would_partition(link)
        ]
        if not candidates:
            return None
        link = self.injector.fabric_rng.choice(candidates)
        end_a, end_b = link.ends
        return TopologyMutation(
            kind="remove_link",
            a=end_a.node.name,
            port_a=end_a.num,
            b=end_b.node.name,
            port_b=end_b.num,
        )

    def _plan_restore_link(self) -> Optional[TopologyMutation]:
        """Re-plug a cable a previous rewire removed, if ports are free."""
        topology = self.sm.topology
        viable = []
        for mutation in self._removed_cables:
            try:
                port_a = topology.node(mutation.a).port(mutation.port_a)
                port_b = topology.node(mutation.b).port(mutation.port_b)
            except TopologyError:
                continue  # an endpoint switch has since been removed
            if not port_a.is_connected and not port_b.is_connected:
                viable.append(mutation)
        if not viable:
            return None
        mutation = self.injector.fabric_rng.choice(viable)
        self._removed_cables.remove(mutation)
        return mutation

    def _plan_add_switch(self) -> Optional[TopologyMutation]:
        """A new switch cabled to two existing switches with free ports."""
        open_switches = [
            sw
            for sw in self.sm.topology.switches
            if next(sw.free_ports(), None) is not None
        ]
        if len(open_switches) < 2:
            return None
        frng = self.injector.fabric_rng
        peer_a = frng.choice(open_switches)
        peer_b = frng.choice([sw for sw in open_switches if sw is not peer_a])
        level = getattr(self.sm.built, "level", None)
        new_level = -1
        if isinstance(level, dict):
            known = [
                level[p.name] for p in (peer_a, peer_b) if p.name in level
            ]
            if known:
                new_level = max(known) + 1
        self._rewire_seq += 1
        name = f"rw{self._rewire_seq}"
        while name in self.sm.topology:
            self._rewire_seq += 1
            name = f"rw{self._rewire_seq}"
        return TopologyMutation(
            kind="add_switch",
            a=name,
            num_ports=8,
            level=new_level,
            cables=(
                (1, peer_a.name, next(peer_a.free_ports()).num),
                (2, peer_b.name, next(peer_b.free_ports()).num),
            ),
        )

    def _plan_remove_switch(self) -> Optional[TopologyMutation]:
        """A safely removable switch, preferring rewire-added ones."""
        topology = self.sm.topology
        added = [
            topology.node(name)
            for name in self._added_switches
            if name in topology
        ]
        pool = [
            sw
            for sw in added
            if isinstance(sw, Switch)
            and not sw.attached_hcas()
            and not self._would_partition(sw)
        ]
        if not pool:
            pool = [
                sw
                for sw in topology.switches
                if not sw.attached_hcas() and not self._would_partition(sw)
            ]
        if not pool:
            return None
        victim = self.injector.fabric_rng.choice(pool)
        return TopologyMutation(kind="remove_switch", a=victim.name)

    def _final_cold_check(self, report: ChaosReport) -> None:
        """Compare warm-cache routing against a cold recompute.

        The distance state was incrementally repaired across every
        mutation of the run; an engine computing from scratch on the
        final topology must produce byte-identical port assignments, or
        the repair chain silently diverged somewhere. The probe is
        side-effect free: ``current_tables`` (which vSwitch fast-path
        migrations keep in sync with the *hardware*, without recomputes)
        is restored afterwards so the end-of-run audit still compares
        what was actually distributed.
        """
        from repro.sm.routing.base import RoutingRequest
        from repro.sm.routing.registry import create_engine

        saved_tables = self.sm.current_tables
        saved_request = self.sm.last_request
        saved_ha = self.sm.ha
        self.sm.ha = None  # do not journal the probe's tables
        try:
            warm = self.sm.compute_routing()
        finally:
            self.sm.ha = saved_ha
            self.sm.current_tables = saved_tables
            self.sm.last_request = saved_request
        request = RoutingRequest.from_topology(
            self.sm.topology, built=self.sm.built
        )
        cold = create_engine(warm.algorithm).compute(request)
        report.final_routing_cold_identical = (
            warm.ports.shape == cold.ports.shape
            and warm.ports.tobytes() == cold.ports.tobytes()
        )

    def _sm_death(self, step: int, report: ChaosReport) -> None:
        """The master dies mid-reconfiguration — at the worst moment.

        It has just computed (and journaled to its standbys) fresh tables
        but not yet distributed them. Nothing is handed over here: the
        standby must *detect* the death through missed leases and take
        over on its own, completing the pending distribution from its
        replica (see :meth:`_ha_tick`).
        """
        master = self.ha.master
        if master is None or not master.alive:
            return
        with span("sm_death", step=step, master=master.node_name):
            self._recover(
                report, self.sm.compute_routing, label="pre-death routing"
            )
            self.ha.kill_master()
        report.sm_deaths += 1
        get_hub().metrics.counter("repro_chaos_sm_deaths_total").add(1)

    def _partition(self, step: int, report: ChaosReport) -> None:
        """Cut the master off the management plane (no cable is cut)."""
        master = self.ha.master
        if master is None or not master.alive:
            return
        with span("sm_partition", step=step, master=master.node_name):
            self.injector.isolate([master.node_name])
            self._partitioned_master = master.node_name
            self._heal_step = step + self.plan.partition_heal_steps
        report.partitions += 1
        get_hub().metrics.counter("repro_chaos_partitions_total").add(1)

    def _heal_partition(self, report: ChaosReport) -> None:
        """The partition heals; the stale master re-emerges and must be
        fenced out (writes rejected) and demoted (SMInfo comparison)."""
        old_name = self._partitioned_master
        self._partitioned_master = None
        self._heal_step = None
        self.injector.heal()
        if old_name is None:
            return
        before = self.sm.transport.stats.snapshot()
        with span("partition_heal", stale_master=old_name) as sp:
            verdict = self.ha.reassert_stale_master(old_name)
            sp.set_attribute("verdict", verdict)
        delta = self.sm.transport.stats.delta_since(before)
        report.stale_writes_rejected += delta.stale_rejected
        if verdict == "demoted":
            report.sm_demotions += 1

    def _link_flap_storm(self, step: int, report: ChaosReport) -> None:
        """One link flaps in a burst; the trap pipeline must absorb it.

        Every down is immediately cancelled by the following up
        (coalescing), the final odd down is throttled by the storm
        detector, and the closing up cancels it too: the whole burst
        costs trap traffic but ZERO reroutes — against one
        reconfiguration per event on the legacy synchronous path.
        """
        frng = self.injector.fabric_rng
        links = [
            link
            for link in self.sm.topology.links
            if all(isinstance(p.node, Switch) for p in link.ends)
        ]
        if not links:
            return
        link = frng.choice(links)
        end_a, end_b = link.ends
        a, pa = end_a.node, end_a.num
        b, pb = end_b.node, end_b.num
        before = self.sm.transport.stats.snapshot()
        with span(
            "link_flap_storm", step=step, a=a.name, b=b.name
        ) as sp:
            try:
                for _ in range(self.plan.link_flap_storm_size):
                    self.events.report_link_down(link)
                    # Reconnecting creates a fresh Link object.
                    link = self.events.report_link_up(a, pa, b, pb)
                self.events.report_link_down(link)
            except TopologyError:
                sp.set_attribute("refused", True)
                report.refused_link_flaps += 1
                return
            self.events.pump()  # storm throttle defers the pending down
            link = self.events.report_link_up(a, pa, b, pb)
            self.events.pump(force=True)  # nothing left: flap cost 0 reroutes
            sp.set_attributes(
                coalesced=self.events.traps_coalesced,
                throttled=self.events.traps_throttled,
            )
        delta = self.sm.transport.stats.delta_since(before)
        report.link_flaps += self.plan.link_flap_storm_size + 1
        report.reroute_smps += delta.lft_update_smps
        report.trap_storms += 1
        get_hub().metrics.counter("repro_chaos_trap_storms_total").add(1)

    def _ha_tick(self, report: ChaosReport) -> None:
        """One HA protocol round: leases, takeover, failover accounting."""
        try:
            result = self.ha.tick()
        except (TransportError, DistributionError) as exc:
            # The failover sweep itself died (lossy fabric). Promotion has
            # already happened — re-driving the distribution repairs it.
            report.control_plane_errors.append(f"ha failover: {exc}")
            self._recover(
                report, self.sm.distribute, label="failover repair"
            )
            result = self.ha.last_failover_report
        if result is not None:
            report.failover_sweep_mode = result.sweep_mode
            report.failover_handshake_smps = result.handshake_smps
            report.journal_entries_replayed = result.journal_entries_replayed
        new = self.ha.failovers - report.sm_failovers
        report.sm_failovers = self.ha.failovers
        if new:
            get_hub().metrics.counter(
                "repro_chaos_sm_failovers_total"
            ).add(new)

    # -- resilience plumbing ---------------------------------------------------

    def _recover(
        self, report: ChaosReport, action, *, label: str = "reconfiguration"
    ) -> None:
        """Run one control-plane action; on failure re-drive distribution.

        A transactional distribution that exhausts its retries rolls the
        switches back but leaves the SM's *intent* (the computed tables)
        standing, so simply re-distributing is the correct repair. Two
        repair attempts, then the error lands in the report and the final
        audit decides whether the fabric actually diverged.
        """
        try:
            action()
            return
        except (TransportError, DistributionError) as exc:
            last = exc
        for _ in range(2):
            try:
                self.sm.distribute()
                return
            except (TransportError, DistributionError) as exc:
                last = exc
        report.control_plane_errors.append(f"{label}: {last}")

    # -- audit --------------------------------------------------------------------

    def _verify(self, report: ChaosReport) -> None:
        from repro.analysis.verification import verify_subnet

        audit = verify_subnet(self.sm)
        report.verified = True
        report.verification_failures = audit.problems()

    def _expose(self, report: ChaosReport) -> None:
        metrics = get_hub().metrics
        metrics.gauge("repro_chaos_smp_overhead_ratio").set(
            report.smp_overhead_ratio
        )
        metrics.gauge("repro_chaos_downtime_inflation").set(
            report.downtime_inflation
        )
        metrics.gauge("repro_chaos_verification_problems").set(
            len(report.verification_failures)
        )
        if report.telemetry is not None:
            tel = report.telemetry
            metrics.gauge("repro_telemetry_chaos_bursts").set(tel.bursts)
            metrics.gauge("repro_telemetry_chaos_peak_utilization").set(
                tel.peak_utilization
            )
            metrics.gauge(
                "repro_telemetry_chaos_flapped_port_discards"
            ).set(tel.flapped_port_discards)
            metrics.gauge(
                "repro_telemetry_chaos_xmit_wait_seconds"
            ).set(tel.xmit_wait_seconds)


# -- the control-plane chaos runner (the kill-service knob) -----------------


@dataclass
class ServiceChaosReport:
    """Outcome of one control-plane chaos run (``repro serve --chaos``).

    The pass criteria are the robustness contract of
    :mod:`repro.service`: after kills, storms and SMP faults the cloud
    audits clean, the forwarding state verifies exact, every submission
    reached a terminal answer (``unanswered`` empty — no silent drops)
    and every retryable rejection carried a retry-after hint.
    """

    steps: int = 0
    plan: str = ""
    tenants: int = 0
    churn: ChurnReport = field(default_factory=ChurnReport)
    #: Unique requests submitted (idempotent retries counted separately).
    submitted: int = 0
    resubmissions: int = 0
    completed: int = 0
    failed: int = 0
    #: Worker kills injected and the recoveries that followed.
    kills: int = 0
    recoveries: int = 0
    recovered_finished: int = 0
    recovered_reconciled: int = 0
    recovered_requeued: int = 0
    #: Submissions made during the tenant-storm burst.
    storm_submissions: int = 0
    #: Batching ledger (accumulated across worker incarnations).
    sweeps: int = 0
    applied_requests: int = 0
    lft_smps: int = 0
    ideal_lft_smps: int = 0
    #: Request ids that never reached a terminal response — silent drops.
    unanswered: List[str] = field(default_factory=list)
    #: Retryable rejections that arrived without a retry-after hint.
    missing_retry_after: List[str] = field(default_factory=list)
    #: ``audit_cloud`` problems found at recovery points and at the end.
    audit_problems: List[str] = field(default_factory=list)
    verified: bool = False
    verification_failures: List[str] = field(default_factory=list)

    @property
    def coalescing_ratio(self) -> float:
        """Applied requests per SM sweep (> 1 means batching won)."""
        return self.applied_requests / self.sweeps if self.sweeps else 0.0

    @property
    def ok(self) -> bool:
        """True iff the run met the whole robustness contract."""
        return (
            self.verified
            and not self.verification_failures
            and not self.audit_problems
            and not self.unanswered
            and not self.missing_retry_after
        )

    def render(self, *, max_problems: int = 10) -> str:
        """Human-readable summary (the ``repro serve`` output)."""
        c = self.churn
        lines = [
            f"serve: {self.steps} steps, {self.tenants} tenants"
            f" [{self.plan}]",
            (
                f"requests: {self.submitted} submitted"
                f" ({self.resubmissions} idempotent retries),"
                f" {self.completed} completed, {self.failed} failed"
            ),
            (
                f"workload: {c.boots} boots, {c.stops} stops,"
                f" {c.migrations} migrations;"
                f" admission: {c.rejected_quota} quota,"
                f" {c.rejected_overload} overload,"
                f" {c.timed_out_requests} timed out"
            ),
            (
                f"batching: {self.applied_requests} applied in"
                f" {self.sweeps} sweeps"
                f" (coalescing {self.coalescing_ratio:.2f}x,"
                f" {self.lft_smps} LFT SMPs vs"
                f" {self.ideal_lft_smps} ideal)"
            ),
            (
                f"crashes: {self.kills} kills, {self.recoveries}"
                f" recoveries ({self.recovered_finished} finished,"
                f" {self.recovered_reconciled} reconciled,"
                f" {self.recovered_requeued} requeued)"
            ),
        ]
        if self.storm_submissions:
            lines.append(
                f"storm: {self.storm_submissions} burst submissions"
            )
        if self.unanswered:
            lines.append(
                f"SILENT DROPS: {len(self.unanswered)} requests never"
                f" answered"
            )
            lines.extend(f"  {rid}" for rid in self.unanswered[:max_problems])
        if self.missing_retry_after:
            lines.append(
                f"rejections without retry-after:"
                f" {len(self.missing_retry_after)}"
            )
        if self.audit_problems:
            lines.append(
                f"cloud audit: FAILED ({len(self.audit_problems)} problems)"
            )
            lines.extend(
                f"  {p}" for p in self.audit_problems[:max_problems]
            )
        else:
            lines.append(
                "cloud audit: clean (no orphaned VFs, no leaked LIDs)"
            )
        if not self.verified:
            lines.append("verification: NOT RUN")
        elif self.verification_failures:
            lines.append(
                f"verification: FAILED"
                f" ({len(self.verification_failures)} problems)"
            )
            lines.extend(
                f"  {p}"
                for p in self.verification_failures[:max_problems]
            )
        else:
            lines.append("verification: clean (forwarding state exact)")
        return "\n".join(lines)


class ServiceChaosRunner:
    """Drive the control-plane service through kills, storms and faults.

    The runner is the *client side* of the robustness contract: it
    submits idempotency-keyed tenant requests, retries them (same key)
    when the worker dies mid-call, and at the end cross-checks that
    every key it ever used reached a terminal response. The kill knob
    (``plan.service_kill_step``) arms a :class:`ServiceKilled` crash at
    the next journal append of that step; recovery is always warm —
    the fabric survives, only the worker's memory is lost.
    """

    def __init__(
        self,
        cloud: CloudManager,
        plan: FaultPlan,
        *,
        tenants: int = 3,
        requests_per_step: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        resilient: bool = True,
        journal=None,
        **service_kwargs,
    ) -> None:
        from repro.service import ControlPlaneService, IntentJournal

        self.cloud = cloud
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.tenant_names = [f"tenant{i}" for i in range(tenants)]
        self.requests_per_step = requests_per_step
        if resilient:
            cloud.sm.enable_resilience(retry_policy, transactional=True)
        self._service_kwargs = dict(service_kwargs)
        self.journal = journal if journal is not None else IntentJournal()
        self.service = ControlPlaneService(
            cloud, journal=self.journal, **self._service_kwargs
        )
        #: Workload RNG, independent of the injector's streams.
        self.rng = __import__("random").Random(plan.seed)
        #: rid -> (op, final status or None while queued).
        self._outcomes: Dict[str, List[Optional[str]]] = {}

    # -- the run ------------------------------------------------------------

    def run(self, steps: int) -> ServiceChaosReport:
        """Perform *steps* service chaos steps, then audit everything."""
        report = ServiceChaosReport(
            steps=steps,
            plan=self.plan.describe(),
            tenants=len(self.tenant_names),
        )
        transport = self.cloud.sm.transport
        if self.plan.injects_smp_faults:
            transport.set_fault_injector(self.injector)
        try:
            with span(
                "service_chaos_run", steps=steps, plan=self.plan.describe()
            ):
                for step in range(steps):
                    self._step(step, report)
                self._drain(report)
        finally:
            transport.set_fault_injector(None)
        self._absorb_stats(report)
        self._settle_outcomes(report)
        self._audit(report)
        self._expose(report)
        return report

    def _step(self, step: int, report: ServiceChaosReport) -> None:
        if (
            self.plan.service_kill_step is not None
            and step == self.plan.service_kill_step
        ):
            # Die at the next journal append; odd seeds lose the write
            # (applied-but-not-journaled), even seeds keep it.
            self.journal.arm_crash(
                self.journal.head_seq + 2,
                before=bool(self.plan.seed % 2),
            )
            report.kills += 1
        storm = (
            self.plan.tenant_storm_step is not None
            and step == self.plan.tenant_storm_step
        )
        factor = self.plan.tenant_storm_factor if storm else 1
        for tenant in self.tenant_names:
            for i in range(self.requests_per_step * factor):
                op, params = self._choose_op(tenant)
                rid = f"{tenant}/s{step}/{i}"
                self._submit(rid, tenant, op, params, report)
                if storm:
                    report.storm_submissions += 1
        self._pump(report)

    def _choose_op(self, tenant: str):
        running = [
            vm
            for vm in self.cloud.vms_of_tenant(tenant)
            if vm.is_running
        ]
        draw = self.rng.random()
        if not running or draw < 0.6:
            return "boot", {}
        victim = self.rng.choice(running).name
        if draw < 0.8:
            return "stop", {"name": victim}
        return "migrate", {"name": victim}

    def _submit(
        self,
        rid: str,
        tenant: str,
        op: str,
        params: Dict[str, Optional[str]],
        report: ServiceChaosReport,
    ) -> None:
        from repro.errors import ServiceKilled

        first = rid not in self._outcomes
        if first:
            self._outcomes[rid] = [op, None]
            report.submitted += 1
        else:
            report.resubmissions += 1
        for _ in range(3):
            try:
                response = self.service.submit(
                    tenant, op, request_id=rid, **params
                )
            except ServiceKilled:
                self._recover(report)
                report.resubmissions += 1
                continue
            if response.status != "accepted":
                self._outcomes[rid][1] = response.status
                if response.retryable and response.retry_after_s is None:
                    report.missing_retry_after.append(rid)
            return

    def _pump(self, report: ServiceChaosReport) -> None:
        from repro.errors import ServiceKilled

        try:
            self.service.pump()
        except ServiceKilled:
            self._recover(report)

    def _drain(self, report: ServiceChaosReport) -> None:
        from repro.errors import ServiceKilled

        for _ in range(10_000):
            if not self.service.queue_depth:
                return
            try:
                self.service.pump()
            except ServiceKilled:
                self._recover(report)
        report.audit_problems.append("queue failed to drain")

    def _recover(self, report: ServiceChaosReport) -> None:
        from repro.service import recover_service

        self._absorb_stats(report)
        self.service, recovery = recover_service(
            self.journal, self.cloud, **self._service_kwargs
        )
        report.recoveries += 1
        report.recovered_finished += recovery.finished
        report.recovered_reconciled += recovery.reconciled
        report.recovered_requeued += recovery.requeued
        report.audit_problems.extend(recovery.problems)

    def _absorb_stats(self, report: ServiceChaosReport) -> None:
        """Fold the current worker incarnation's ledger into the run."""
        stats = self.service.stats
        report.sweeps += stats.sweeps
        report.applied_requests += stats.applied_requests
        report.lft_smps += stats.lft_smps
        report.ideal_lft_smps += stats.ideal_lft_smps

    # -- settlement and audit ------------------------------------------------

    def _settle_outcomes(self, report: ServiceChaosReport) -> None:
        """Resolve queued requests and enforce no-silent-drop."""
        churn = report.churn
        for rid, (op, status) in self._outcomes.items():
            if status is None:
                response = self.service.response_for(rid)
                status = response.status if response is not None else None
            if status is None:
                report.unanswered.append(rid)
                continue
            if status == "completed":
                report.completed += 1
                if op == "boot":
                    churn.boots += 1
                elif op == "stop":
                    churn.stops += 1
                elif op == "migrate":
                    churn.migrations += 1
            elif status == "failed":
                report.failed += 1
                if op == "migrate":
                    churn.failed_migrations += 1
                elif op == "boot":
                    churn.failed_boots += 1
            elif status == "rejected_quota":
                churn.rejected_quota += 1
            elif status == "rejected_overload":
                churn.rejected_overload += 1
            elif status == "timed_out":
                churn.timed_out_requests += 1

    def _audit(self, report: ServiceChaosReport) -> None:
        from repro.analysis.verification import verify_subnet
        from repro.service import audit_cloud

        report.audit_problems.extend(audit_cloud(self.cloud))
        audit = verify_subnet(self.cloud.sm)
        report.verified = True
        report.verification_failures = audit.problems()

    def _expose(self, report: ServiceChaosReport) -> None:
        metrics = get_hub().metrics
        metrics.gauge("repro_service_chaos_coalescing_ratio").set(
            report.coalescing_ratio
        )
        metrics.gauge("repro_service_chaos_unanswered").set(
            len(report.unanswered)
        )
        metrics.gauge("repro_service_chaos_recoveries").set(
            report.recoveries
        )
        metrics.gauge("repro_service_chaos_audit_problems").set(
            len(report.audit_problems)
        )
