"""VM churn workloads: the "several VMs booted every minute" regime.

Drives a :class:`~repro.virt.cloud.CloudManager` with randomized boot/stop
events and accounts what the active LID scheme paid for them — the paper's
section V-B overhead ("Each time a VM is created, the LFTs of all the
physical switches in the subnet will need to be updated ... One SMP per
switch") versus prepopulation's zero-SMP boots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.errors import VirtError
from repro.virt.cloud import CloudManager

__all__ = ["ChurnReport", "ChurnWorkload"]


@dataclass
class ChurnReport:
    """Outcome of one churn run."""

    boots: int = 0
    stops: int = 0
    rejected_boots: int = 0
    boot_lft_smps: List[int] = field(default_factory=list)

    @property
    def total_boot_smps(self) -> int:
        """LFT SMPs spent on VM creation across the run."""
        return sum(self.boot_lft_smps)

    @property
    def mean_boot_smps(self) -> float:
        """Average LFT SMPs per VM boot."""
        return (
            self.total_boot_smps / len(self.boot_lft_smps)
            if self.boot_lft_smps
            else 0.0
        )


class ChurnWorkload:
    """Random boot/stop driver with a target utilization."""

    def __init__(
        self,
        cloud: CloudManager,
        *,
        seed: int = 0,
        target_utilization: float = 0.5,
    ) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise VirtError("target_utilization must be in (0, 1]")
        self.cloud = cloud
        self.rng = random.Random(seed)
        self.target_utilization = target_utilization

    def run(self, steps: int) -> ChurnReport:
        """Perform *steps* boot-or-stop events.

        Boots are favoured below the target utilization, stops above it, so
        the cloud hovers around the target while continuously churning.
        """
        report = ChurnReport()
        for _ in range(steps):
            cap = self.cloud.total_capacity
            running = self.cloud.running_vm_count
            utilization = running / cap if cap else 1.0
            boot_bias = 0.9 if utilization < self.target_utilization else 0.1
            if running == 0 or self.rng.random() < boot_bias:
                self._boot(report)
            else:
                self._stop(report)
        return report

    def _boot(self, report: ChurnReport) -> None:
        candidates = [
            h for h in self.cloud.hypervisors.values() if h.has_capacity()
        ]
        if not candidates:
            report.rejected_boots += 1
            return
        before = self.cloud.sm.transport.stats.lft_update_smps
        self.cloud.boot_vm()
        after = self.cloud.sm.transport.stats.lft_update_smps
        report.boots += 1
        report.boot_lft_smps.append(after - before)

    def _stop(self, report: ChurnReport) -> None:
        names = [
            name for name, vm in self.cloud.vms.items() if vm.is_running
        ]
        if not names:
            return
        self.cloud.stop_vm(self.rng.choice(names))
        report.stops += 1
