"""VM churn workloads: the "several VMs booted every minute" regime.

Drives a :class:`~repro.virt.cloud.CloudManager` with randomized boot/stop
events and accounts what the active LID scheme paid for them — the paper's
section V-B overhead ("Each time a VM is created, the LFTs of all the
physical switches in the subnet will need to be updated ... One SMP per
switch") versus prepopulation's zero-SMP boots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.errors import TransportError, VirtError
from repro.virt.cloud import CloudManager

__all__ = ["ChurnReport", "ChurnWorkload"]


@dataclass
class ChurnReport:
    """Outcome of one churn run."""

    boots: int = 0
    stops: int = 0
    rejected_boots: int = 0
    boot_lft_smps: List[int] = field(default_factory=list)
    #: Boots aborted by the control plane (lost SMPs, exhausted retries);
    #: the scheme rolled the LID/VF allocation back.
    failed_boots: int = 0
    #: Live migrations attempted (only with ``migrate_probability`` > 0).
    migrations: int = 0
    #: Migrations that aborted cleanly (subnet restored to pre-state).
    rolled_back_migrations: int = 0
    #: Migrations whose rollback also failed (subnet needs repair).
    failed_migrations: int = 0
    #: Admission-control outcomes (service-driven churn only): requests
    #: bounced off a tenant quota, shed under overload (both with a
    #: retry-after hint — never a silent drop), or expired in the queue.
    rejected_quota: int = 0
    rejected_overload: int = 0
    timed_out_requests: int = 0

    @property
    def total_boot_smps(self) -> int:
        """LFT SMPs spent on VM creation across the run."""
        return sum(self.boot_lft_smps)

    @property
    def mean_boot_smps(self) -> float:
        """Average LFT SMPs per VM boot."""
        return (
            self.total_boot_smps / len(self.boot_lft_smps)
            if self.boot_lft_smps
            else 0.0
        )


class ChurnWorkload:
    """Random boot/stop driver with a target utilization."""

    def __init__(
        self,
        cloud: CloudManager,
        *,
        seed: int = 0,
        target_utilization: float = 0.5,
        migrate_probability: float = 0.0,
    ) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise VirtError("target_utilization must be in (0, 1]")
        if not 0.0 <= migrate_probability <= 1.0:
            raise VirtError("migrate_probability must be in [0, 1]")
        self.cloud = cloud
        self.rng = random.Random(seed)
        self.target_utilization = target_utilization
        #: Probability that a step live-migrates a random running VM
        #: instead of booting/stopping. At the default 0 no RNG draw is
        #: made for it, so pre-existing seeded runs replay unchanged.
        self.migrate_probability = migrate_probability

    def run(self, steps: int) -> ChurnReport:
        """Perform *steps* boot-or-stop (or migrate) events.

        Boots are favoured below the target utilization, stops above it, so
        the cloud hovers around the target while continuously churning.
        """
        report = ChurnReport()
        for _ in range(steps):
            if (
                self.migrate_probability
                and self.rng.random() < self.migrate_probability
            ):
                self._migrate(report)
                continue
            cap = self.cloud.total_capacity
            running = self.cloud.running_vm_count
            utilization = running / cap if cap else 1.0
            boot_bias = 0.9 if utilization < self.target_utilization else 0.1
            if running == 0 or self.rng.random() < boot_bias:
                self._boot(report)
            else:
                self._stop(report)
        return report

    def _boot(self, report: ChurnReport) -> None:
        candidates = [
            h for h in self.cloud.hypervisors.values() if h.has_capacity()
        ]
        if not candidates:
            report.rejected_boots += 1
            return
        before = self.cloud.sm.transport.stats.lft_update_smps
        try:
            self.cloud.boot_vm()
        except TransportError:
            # The scheme rolled the boot back (LID and VF returned); the
            # churn keeps going on the degraded fabric.
            report.failed_boots += 1
            return
        after = self.cloud.sm.transport.stats.lft_update_smps
        report.boots += 1
        report.boot_lft_smps.append(after - before)

    def _migrate(self, report: ChurnReport) -> None:
        running = [vm for vm in self.cloud.vms.values() if vm.is_running]
        if not running:
            return
        vm = self.rng.choice(running)
        candidates = [
            h
            for h in self.cloud.hypervisors.values()
            if h.name != vm.hypervisor_name and h.has_capacity()
        ]
        if not candidates:
            return
        dest = self.rng.choice(candidates)
        outcome = self.cloud.live_migrate(vm.name, dest.name).outcome
        report.migrations += 1
        if outcome == "rolled_back":
            report.rolled_back_migrations += 1
        elif outcome == "failed":
            report.failed_migrations += 1

    def _stop(self, report: ChurnReport) -> None:
        names = [
            name for name, vm in self.cloud.vms.items() if vm.is_running
        ]
        if not names:
            return
        self.cloud.stop_vm(self.rng.choice(names))
        report.stops += 1
