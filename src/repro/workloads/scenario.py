"""Scripted datacenter scenarios: churn + migrations + failures, traced.

A :class:`Scenario` is a reproducible sequence of operations against one
cloud — the "day in the life" the paper's introduction sketches (tenants
come and go, the operator consolidates, cables fail). Every action is
recorded in a :class:`~repro.sim.trace.Trace` with its cost, so a run can
be audited afterwards and regression-tested line by line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import TopologyError
from repro.fabric.node import Switch
from repro.obs.hub import span
from repro.sim.trace import Trace
from repro.virt.cloud import CloudManager
from repro.workloads.migration_patterns import ANY, MigrationPlanner

__all__ = ["ScenarioSummary", "Scenario"]


@dataclass
class ScenarioSummary:
    """Aggregates of one scenario run."""

    boots: int = 0
    stops: int = 0
    migrations: int = 0
    failures: int = 0
    repairs: int = 0
    migration_lft_smps: int = 0
    failure_lft_smps: int = 0
    path_computations: int = 0  # how many times PCt was ever paid

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for assertions and rendering."""
        return {
            "boots": self.boots,
            "stops": self.stops,
            "migrations": self.migrations,
            "failures": self.failures,
            "repairs": self.repairs,
            "migration_lft_smps": self.migration_lft_smps,
            "failure_lft_smps": self.failure_lft_smps,
            "path_computations": self.path_computations,
        }


class Scenario:
    """A seeded operation script over one cloud."""

    def __init__(self, cloud: CloudManager, built, *, seed: int = 0) -> None:
        self.cloud = cloud
        self.built = built
        self.rng = random.Random(seed)
        self.trace = Trace()
        self.summary = ScenarioSummary()
        self._planner = MigrationPlanner(cloud, built, seed=seed)
        self._clock = 0.0
        self._downed: List[tuple] = []

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    # -- primitive steps ------------------------------------------------------

    def boot(self, count: int = 1) -> None:
        """Boot *count* VMs on scheduler-chosen nodes (skips when full)."""
        for _ in range(count):
            if not any(
                h.has_capacity() for h in self.cloud.hypervisors.values()
            ):
                return
            vm = self.cloud.boot_vm()
            self.summary.boots += 1
            self.trace.emit(
                self._tick(), "boot", vm=vm.name, on=vm.hypervisor_name, lid=vm.lid
            )

    def stop(self, count: int = 1) -> None:
        """Stop *count* random running VMs."""
        for _ in range(count):
            names = [n for n, vm in self.cloud.vms.items() if vm.is_running]
            if not names:
                return
            name = self.rng.choice(names)
            self.cloud.stop_vm(name)
            self.summary.stops += 1
            self.trace.emit(self._tick(), "stop", vm=name)

    def migrate(self, count: int = 1, distance: str = ANY) -> None:
        """Perform *count* planner-chosen migrations."""
        for _ in range(count):
            plan = self._planner.plan_one(distance)
            if plan is None:
                return
            report = self.cloud.live_migrate(*plan)
            self.summary.migrations += 1
            self.summary.migration_lft_smps += report.reconfig.lft_smps
            self.trace.emit(
                self._tick(),
                "migrate",
                vm=report.vm_name,
                src=report.source,
                dest=report.destination,
                smps=report.reconfig.lft_smps,
                n_prime=report.switches_updated,
            )

    def fail_random_link(self) -> bool:
        """Cut one random inter-switch cable (skipped if it would partition).

        Returns True when a failure was injected.
        """
        links = [
            l
            for l in self.cloud.topology.links
            if isinstance(l.a.node, Switch) and isinstance(l.b.node, Switch)
        ]
        self.rng.shuffle(links)
        for link in links:
            spec = (link.a.node, link.a.num, link.b.node, link.b.num)
            try:
                report = self.cloud.sm.handle_link_failure(link)
            except TopologyError:
                # Would partition: plug it back and try another.
                self.cloud.topology.connect(*spec)
                self.cloud.topology.invalidate_fabric_view()
                self.cloud.sm.transport.invalidate_distances()
                continue
            self._downed.append(spec)
            self.summary.failures += 1
            self.summary.failure_lft_smps += report.lft_smps
            self.summary.path_computations += 1
            self.trace.emit(
                self._tick(),
                "link-failure",
                a=spec[0].name,
                b=spec[2].name,
                smps=report.lft_smps,
            )
            return True
        return False

    def repair_links(self) -> int:
        """Re-cable everything that failed; returns repairs performed."""
        repaired = 0
        while self._downed:
            a, pa, b, pb = self._downed.pop()
            self.cloud.topology.connect(a, pa, b, pb)
            self.cloud.topology.invalidate_fabric_view()
            self.cloud.sm.transport.invalidate_distances()
            report = self.cloud.sm.incremental_reroute()
            self.summary.repairs += 1
            self.summary.path_computations += 1
            self.trace.emit(
                self._tick(), "link-repair", a=a.name, b=b.name,
                smps=report.lft_smps,
            )
            repaired += 1
        return repaired

    # -- canned scripts -----------------------------------------------------------

    def business_day(self) -> ScenarioSummary:
        """Morning scale-up, midday churn + a failure, evening consolidation."""
        with span("business_day") as sp:
            with span("morning_scale_up"):
                self.boot(count=self.cloud.total_capacity // 3)
            with span("midday_churn"):
                self.migrate(count=3)
                self.stop(count=2)
                self.boot(count=4)
                self.fail_random_link()
                self.migrate(count=3)
                self.repair_links()
            with span("evening_consolidation"):
                self.stop(count=3)
                self.migrate(count=2)
            sp.set_attributes(**self.summary.as_dict())
        return self.summary
