"""Migration pattern generators: how far, topologically, do VMs move?

Section VI-D of the paper ties the number of switches needing updates (n')
to the interconnection distance of a migration: intra-leaf moves need one
switch; cross-pod moves may touch many. These generators pick
source/destination hypervisor pairs by distance class so the skyline
ablation (experiment E6) can sweep it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import VirtError
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.node import Switch
from repro.virt.cloud import CloudManager
from repro.virt.hypervisor import Hypervisor

__all__ = ["DistanceClass", "MigrationPlanner"]

#: Recognized migration distance classes.
DistanceClass = str
INTRA_LEAF: DistanceClass = "intra-leaf"
INTRA_POD: DistanceClass = "intra-pod"
INTER_POD: DistanceClass = "inter-pod"
ANY: DistanceClass = "any"


class MigrationPlanner:
    """Picks (vm, destination) pairs by topological distance class."""

    def __init__(
        self,
        cloud: CloudManager,
        built: BuiltTopology,
        *,
        seed: int = 0,
    ) -> None:
        self.cloud = cloud
        self.built = built
        self.rng = random.Random(seed)

    # -- structure queries ------------------------------------------------------

    def leaf_of(self, hyp: Hypervisor) -> Switch:
        """The leaf switch a hypervisor hangs off."""
        peer = hyp.uplink_port.remote
        if peer is None or not isinstance(peer.node, Switch):
            raise VirtError(f"{hyp.name} is not cabled to a switch")
        return peer.node

    def pod_of(self, hyp: Hypervisor) -> int:
        """The pod index of a hypervisor's leaf (-1 for 2-level trees)."""
        return self.built.pod.get(self.leaf_of(hyp).name, -1)

    def classify(self, src: Hypervisor, dest: Hypervisor) -> DistanceClass:
        """The distance class of a candidate migration."""
        if self.leaf_of(src) is self.leaf_of(dest):
            return INTRA_LEAF
        src_pod, dest_pod = self.pod_of(src), self.pod_of(dest)
        if src_pod >= 0 and src_pod == dest_pod:
            return INTRA_POD
        return INTER_POD

    # -- planning ------------------------------------------------------------------

    def candidate_destinations(
        self, src: Hypervisor, distance: DistanceClass
    ) -> List[Hypervisor]:
        """Hypervisors with capacity at the requested distance from *src*."""
        out = []
        for hyp in self.cloud.hypervisors.values():
            if hyp is src or not hyp.has_capacity():
                continue
            if distance == ANY or self.classify(src, hyp) == distance:
                out.append(hyp)
        return out

    def plan_one(
        self, distance: DistanceClass
    ) -> Optional[Tuple[str, str]]:
        """One (vm_name, dest_hypervisor_name) pair, or None if impossible."""
        vms = [vm for vm in self.cloud.vms.values() if vm.is_running]
        self.rng.shuffle(vms)
        for vm in vms:
            src = self.cloud.hypervisors[vm.hypervisor_name]
            dests = self.candidate_destinations(src, distance)
            if dests:
                return vm.name, self.rng.choice(dests).name
        return None

    def plan_batch(
        self, distance: DistanceClass, count: int
    ) -> List[Tuple[str, str]]:
        """Up to *count* distinct-VM migration pairs of one distance class.

        Destination capacity consumed by earlier plans in the batch is
        reserved, so the whole batch is executable back to back.
        """
        plans: List[Tuple[str, str]] = []
        used_vms: set = set()
        reserved: Dict[str, int] = {}
        vms = [vm for vm in self.cloud.vms.values() if vm.is_running]
        self.rng.shuffle(vms)
        for vm in vms:
            if len(plans) >= count:
                break
            if vm.name in used_vms:
                continue
            src = self.cloud.hypervisors[vm.hypervisor_name]
            dests = [
                d
                for d in self.candidate_destinations(src, distance)
                if d.free_vf_count - reserved.get(d.name, 0) > 0
            ]
            if dests:
                dest = self.rng.choice(dests)
                plans.append((vm.name, dest.name))
                used_vms.add(vm.name)
                reserved[dest.name] = reserved.get(dest.name, 0) + 1
        return plans

    def execute(self, plans: List[Tuple[str, str]]) -> Dict[str, List[int]]:
        """Run planned migrations; returns per-class n' observations."""
        observed: Dict[str, List[int]] = {}
        for vm_name, dest_name in plans:
            vm = self.cloud.vms[vm_name]
            src = self.cloud.hypervisors[vm.hypervisor_name]
            dest = self.cloud.hypervisors[dest_name]
            klass = self.classify(src, dest)
            report = self.cloud.live_migrate(vm_name, dest_name)
            observed.setdefault(klass, []).append(report.switches_updated)
        return observed
