"""Traffic placement analysis: does a routing function balance load?

Section V-A claims prepopulated LIDs enable LMC-like multipathing and
better balancing, while section V-B concedes dynamic assignment
"compromises on the traffic balancing" (every VM shares its PF's path).
These helpers make that trade-off measurable: place a set of flows on a
routing function and report per-link loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import LFT_UNSET
from repro.errors import RoutingError
from repro.sm.routing.base import RoutingRequest, RoutingTables

__all__ = ["LinkLoadReport", "link_loads", "all_to_all_flows"]


@dataclass
class LinkLoadReport:
    """Per-link flow counts plus balance statistics."""

    loads: Dict[Tuple[int, int], int]  # (switch_index, out_port) -> flows

    @property
    def values(self) -> np.ndarray:
        """Load vector over used links."""
        if not self.loads:
            return np.zeros(0, dtype=np.int64)
        return np.asarray(list(self.loads.values()), dtype=np.int64)

    @property
    def max_load(self) -> int:
        """Hottest link."""
        v = self.values
        return int(v.max()) if v.size else 0

    @property
    def mean_load(self) -> float:
        """Mean over used links."""
        v = self.values
        return float(v.mean()) if v.size else 0.0

    @property
    def imbalance(self) -> float:
        """max/mean ratio — 1.0 is perfectly balanced."""
        return self.max_load / self.mean_load if self.mean_load else 0.0


def all_to_all_flows(lids: Sequence[int]) -> List[Tuple[int, int]]:
    """Ordered all-to-all flow set over the given endpoint LIDs."""
    return [(a, b) for a in lids for b in lids if a != b]


def link_loads(
    tables: RoutingTables,
    request: RoutingRequest,
    flows: Sequence[Tuple[int, int]],
) -> LinkLoadReport:
    """Walk every flow through the routing and count per-link usage.

    Flows start at the source LID's attachment switch and follow the LFT
    entries for the destination LID until delivery. Only inter-switch hops
    are counted (the host links carry exactly one endpoint's traffic and
    cannot be balanced).
    """
    attach: Dict[int, int] = {
        t.lid: t.switch_index for t in request.terminals
    }
    # (switch, out_port) -> neighbour switch, inter-switch ports only.
    view = request.view
    degrees = np.diff(view.indptr)
    edge_src = np.repeat(
        np.arange(view.num_switches, dtype=np.int64), degrees
    )
    p2p: Dict[Tuple[int, int], int] = {
        (int(edge_src[k]), int(view.out_port[k])): int(view.peer[k])
        for k in range(len(view.peer))
    }
    loads: Dict[Tuple[int, int], int] = {}
    for src_lid, dst_lid in flows:
        try:
            cur = attach[src_lid]
        except KeyError:
            raise RoutingError(f"source LID {src_lid} has no attachment")
        guard = 0
        while True:
            out = tables.port_for(cur, dst_lid)
            if out == LFT_UNSET:
                raise RoutingError(
                    f"no route at switch {cur} for LID {dst_lid}"
                )
            nxt = p2p.get((cur, out))
            if nxt is None:
                break  # delivered off-fabric
            loads[(cur, out)] = loads.get((cur, out), 0) + 1
            cur = nxt
            guard += 1
            if guard > view.num_switches + 1:
                raise RoutingError(
                    f"loop while placing flow {src_lid}->{dst_lid}"
                )
    return LinkLoadReport(loads=loads)
