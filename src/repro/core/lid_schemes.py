"""The two proposed vSwitch LID schemes (paper sections V-A and V-B).

* :class:`PrepopulatedLidScheme` — every VF receives a LID when the subnet
  boots, VMs inherit the LID of the VF they are attached to, and migrations
  *swap* LIDs. Costs more initial path computation and caps physical nodes
  + VFs at the unicast LID limit, but gives per-VM alternative paths (the
  LMC-like feature) and zero SMPs at VM boot.
* :class:`DynamicLidScheme` — VFs are LID-less until a VM boots, at which
  point the next free LID is assigned and the PF's forwarding entry is
  copied to it (one SMP per switch). Faster subnet bring-up, no VF-count
  limit, but all VMs of a hypervisor share the PF's path.

Both schemes speak to the SM's :class:`~repro.sm.lid_manager.LidManager`
for allocation and to the :class:`~repro.core.reconfig.VSwitchReconfigurer`
for LFT edits.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReconfigError, TransportError
from repro.sm.subnet_manager import SubnetManager
from repro.sriov.base import VirtualFunction
from repro.sriov.vswitch import VSwitchHCA
from repro.core.reconfig import ReconfigReport, VSwitchReconfigurer

__all__ = [
    "VmBootReport",
    "VmBootBatchReport",
    "LidScheme",
    "PrepopulatedLidScheme",
    "DynamicLidScheme",
]


@dataclass
class VmBootReport:
    """What starting one VM cost the subnet."""

    vf_name: str
    lid: int
    lft_smps: int = 0
    reconfig: Optional[ReconfigReport] = None


@dataclass
class VmBootBatchReport:
    """Cost of booting several VMs as one coalesced operation.

    ``ideal_lft_smps`` is what the same boots would have cost issued one
    at a time (the per-boot ``predict_copy`` sum); ``lft_smps`` is what
    the batch actually paid. Their ratio is the control-plane service's
    coalescing win.
    """

    boots: List[VmBootReport] = field(default_factory=list)
    reconfig: Optional[ReconfigReport] = None
    ideal_lft_smps: int = 0

    @property
    def lft_smps(self) -> int:
        """LFT SMPs the whole batch actually cost."""
        return self.reconfig.lft_smps if self.reconfig is not None else 0


class LidScheme(abc.ABC):
    """Common machinery of the two LID assignment policies."""

    name: str = "abstract"

    def __init__(self, sm: SubnetManager, *, destination_routed: bool = False) -> None:
        self.sm = sm
        self.reconfigurer = VSwitchReconfigurer(
            sm, destination_routed=destination_routed
        )
        self.vswitches: List[VSwitchHCA] = []

    def register_hypervisor(self, vsw: VSwitchHCA) -> None:
        """Adopt one vSwitch-enabled hypervisor HCA."""
        self.vswitches.append(vsw)

    def initialize(self) -> None:
        """Assign LIDs per policy. Call after base LID assignment, before
        the initial routing computation."""
        for vsw in self.vswitches:
            self._adopt_pf_lid(vsw)
            self._initialize_vswitch(vsw)

    def _adopt_pf_lid(self, vsw: VSwitchHCA) -> None:
        port_lid = vsw.uplink_port.lid
        if port_lid is None:
            raise ReconfigError(
                f"{vsw.hca.name}: assign base LIDs before initializing the scheme"
            )
        vsw.pf.lid = port_lid

    @abc.abstractmethod
    def _initialize_vswitch(self, vsw: VSwitchHCA) -> None:
        """Policy-specific VF LID setup."""

    @abc.abstractmethod
    def boot_vm(self, vsw: VSwitchHCA, vm_name: str) -> VmBootReport:
        """Attach a new VM to a free VF and make its LID routable."""

    def boot_vms(
        self, requests: Sequence[Tuple[VSwitchHCA, str]]
    ) -> VmBootBatchReport:
        """Boot several VMs in one operation.

        Default: sequential :meth:`boot_vm` calls (correct for schemes
        with zero per-boot SMPs). The dynamic scheme overrides this with
        a genuinely coalesced LFT sweep. All-or-nothing on transport
        failure either way.
        """
        batch = VmBootBatchReport()
        booted: List[Tuple[VSwitchHCA, VirtualFunction]] = []
        try:
            for vsw, vm_name in requests:
                report = self.boot_vm(vsw, vm_name)
                batch.boots.append(report)
                batch.ideal_lft_smps += report.lft_smps
                booted.append(
                    (vsw, vsw.vf(int(report.vf_name.rsplit("VF", 1)[1])))
                )
        except TransportError:
            # boot_vm rolled the failing boot back; undo the earlier ones
            # so the batch is all-or-nothing for the caller.
            for vsw, vf in reversed(booted):
                self.shutdown_vm(vsw, vf)
            raise
        return batch

    @abc.abstractmethod
    def shutdown_vm(self, vsw: VSwitchHCA, vf: VirtualFunction) -> None:
        """Release the VF (and, policy-dependent, its LID)."""

    @abc.abstractmethod
    def migrate_lid(
        self,
        vm_lid: int,
        src_vsw: VSwitchHCA,
        src_vf: VirtualFunction,
        dest_vsw: VSwitchHCA,
        dest_vf: VirtualFunction,
        *,
        limit_switches=None,
    ) -> ReconfigReport:
        """Move *vm_lid* from ``src_vf`` to ``dest_vf`` in the LFTs and the
        LID registry (step b of Algorithm 1).

        ``limit_switches`` optionally restricts the LFT sweep to a skyline
        subset (section VI-D minimal reconfiguration; intra-leaf only)."""

    # -- shared helpers -----------------------------------------------------

    def total_vf_count(self) -> int:
        """All VFs across registered hypervisors."""
        return sum(v.num_vfs for v in self.vswitches)

    def active_vm_count(self) -> int:
        """VMs currently holding VFs."""
        return sum(len(v.active_vfs()) for v in self.vswitches)


class PrepopulatedLidScheme(LidScheme):
    """Section V-A: all VFs get LIDs at boot; migration swaps LID entries."""

    name = "prepopulated"

    def _initialize_vswitch(self, vsw: VSwitchHCA) -> None:
        for vf in vsw.vfs:
            if vf.lid is None:
                vf.lid = self.sm.lid_manager.assign_extra_lid(vsw.uplink_port)

    def boot_vm(self, vsw: VSwitchHCA, vm_name: str) -> VmBootReport:
        """Find an available VM slot (== an available VF); zero SMPs.

        Paths for the VF's LID were computed at subnet boot, so nothing is
        sent — the key advantage of prepopulation.
        """
        vf = vsw.first_free_vf()
        if vf.lid is None:
            raise ReconfigError(f"{vf.name} has no prepopulated LID")
        vf.attach(vm_name)
        return VmBootReport(vf_name=vf.name, lid=vf.lid, lft_smps=0)

    def shutdown_vm(self, vsw: VSwitchHCA, vf: VirtualFunction) -> None:
        """The LID stays with the VF (the next VM on it reuses it)."""
        vf.release()

    def migrate_lid(
        self,
        vm_lid: int,
        src_vsw: VSwitchHCA,
        src_vf: VirtualFunction,
        dest_vsw: VSwitchHCA,
        dest_vf: VirtualFunction,
        *,
        limit_switches=None,
    ) -> ReconfigReport:
        """Swap the VM's LID with the destination VF's prepopulated LID.

        After the swap the destination VF carries ``vm_lid`` and the source
        VF inherits the destination VF's old LID — the initial routing
        balance is preserved exactly (section V-C1).
        """
        if dest_vf.lid is None:
            raise ReconfigError(f"{dest_vf.name} has no prepopulated LID")
        other_lid = dest_vf.lid
        report = self.reconfigurer.swap_lids(
            vm_lid, other_lid, limit_switches=limit_switches
        )
        # LID registry: the two LIDs exchange attachment points.
        self.sm.lid_manager.move_lid(vm_lid, dest_vsw.uplink_port)
        self.sm.lid_manager.move_lid(other_lid, src_vsw.uplink_port)
        dest_vf.lid = vm_lid
        src_vf.lid = other_lid
        return report


class DynamicLidScheme(LidScheme):
    """Section V-B: LIDs appear with VMs; migration copies the PF's entry."""

    name = "dynamic"

    def _initialize_vswitch(self, vsw: VSwitchHCA) -> None:
        # VFs stay LID-less until a VM boots: nothing to do.
        return

    def boot_vm(self, vsw: VSwitchHCA, vm_name: str) -> VmBootReport:
        """Assign the next free LID and copy the PF's forwarding entries.

        One SMP per switch whose relevant LFT block changes (at most n) —
        the runtime overhead prepopulation avoids (section V-B).
        """
        vf = vsw.first_free_vf()
        pf_lid = vsw.pf_lid
        if pf_lid is None:
            raise ReconfigError(f"{vsw.hca.name}: PF has no LID")
        lid = self.sm.lid_manager.assign_extra_lid(vsw.uplink_port)
        vf.lid = lid
        vf.attach(vm_name)
        try:
            reconfig = self.reconfigurer.copy_path(pf_lid, lid)
        except TransportError:
            # The reconfigurer already restored the touched LFT entries;
            # return the LID and the VF so the failed boot leaves no trace.
            vf.release()
            vf.lid = None
            self.sm.lid_manager.release_lid(lid)
            raise
        return VmBootReport(
            vf_name=vf.name, lid=lid, lft_smps=reconfig.lft_smps, reconfig=reconfig
        )

    def boot_vms(
        self, requests: Sequence[Tuple[VSwitchHCA, str]]
    ) -> VmBootBatchReport:
        """Boot a batch with one coalesced LFT sweep (the service win).

        All the batch's VFs and LIDs are allocated first, then every
        switch is programmed once via
        :meth:`~repro.core.reconfig.VSwitchReconfigurer.copy_paths` —
        consecutive fresh LIDs share 64-entry blocks, so k boots often
        cost one SMP per switch instead of k. A transport failure rolls
        the LFT writes back (inside ``copy_paths``) and releases every
        VF/LID of the batch: no orphaned allocations.
        """
        batch = VmBootBatchReport()
        if not requests:
            return batch
        allocs: List[Tuple[VirtualFunction, int, int]] = []
        try:
            for vsw, vm_name in requests:
                vf = vsw.first_free_vf()
                pf_lid = vsw.pf_lid
                if pf_lid is None:
                    raise ReconfigError(f"{vsw.hca.name}: PF has no LID")
                lid = self.sm.lid_manager.assign_extra_lid(vsw.uplink_port)
                vf.lid = lid
                vf.attach(vm_name)
                allocs.append((vf, lid, pf_lid))
                _, smps = self.reconfigurer.predict_copy(pf_lid, lid)
                batch.ideal_lft_smps += smps
            batch.reconfig = self.reconfigurer.copy_paths(
                [(pf_lid, lid) for _, lid, pf_lid in allocs]
            )
        except TransportError:
            for vf, lid, _ in reversed(allocs):
                vf.release()
                vf.lid = None
                self.sm.lid_manager.release_lid(lid)
            raise
        batch.boots = [
            VmBootReport(vf_name=vf.name, lid=lid)
            for vf, lid, _ in allocs
        ]
        return batch

    def shutdown_vm(self, vsw: VSwitchHCA, vf: VirtualFunction) -> None:
        """Release both the VF and its LID back to the free pools."""
        if vf.lid is not None:
            self.sm.lid_manager.release_lid(vf.lid)
            vf.lid = None
        vf.release()

    def migrate_lid(
        self,
        vm_lid: int,
        src_vsw: VSwitchHCA,
        src_vf: VirtualFunction,
        dest_vsw: VSwitchHCA,
        dest_vf: VirtualFunction,
        *,
        limit_switches=None,
    ) -> ReconfigReport:
        """Copy the destination PF's entry onto the VM's LID everywhere.

        Exactly one LID is involved, so at most one SMP per switch is ever
        needed (section V-C2).
        """
        dest_pf_lid = dest_vsw.pf_lid
        if dest_pf_lid is None:
            raise ReconfigError(f"{dest_vsw.hca.name}: PF has no LID")
        report = self.reconfigurer.copy_path(
            dest_pf_lid, vm_lid, limit_switches=limit_switches
        )
        self.sm.lid_manager.move_lid(vm_lid, dest_vsw.uplink_port)
        dest_vf.lid = vm_lid
        src_vf.lid = None
        return report
