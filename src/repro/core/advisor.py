"""Migration advisor: turning cheap reconfiguration into an optimizer.

The paper's case for the vSwitch architecture is that once migrations cost
a handful of SMPs and zero path computation, the operator can *use* them —
"transparent live migrations for data center optimization" (section I).
The advisor closes that loop with the observability substrate:

1. read the PMA counters (or a supplied flow set) to find the hottest
   hypervisor uplinks;
2. propose moving a VM from behind the hottest uplink to the coldest
   hypervisor with capacity;
3. price the proposal with the skyline machinery (predicted n′ and SMPs)
   so the operator sees the cost before committing.

Proposals are suggestions — :meth:`MigrationAdvisor.apply` executes one
through the normal cloud path so every invariant (and every listener)
holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.skyline import plan_skyline
from repro.errors import ReproError
from repro.workloads.traffic import LinkLoadReport, all_to_all_flows, link_loads

__all__ = ["MigrationProposal", "MigrationAdvisor"]


@dataclass(frozen=True)
class MigrationProposal:
    """One suggested migration with its predicted network cost."""

    vm_name: str
    source: str
    destination: str
    reason: str
    predicted_switches: int
    predicted_max_smps: int
    intra_leaf: bool


class MigrationAdvisor:
    """Suggests load-cooling migrations on a running cloud."""

    def __init__(self, cloud) -> None:
        self.cloud = cloud

    # -- load views ------------------------------------------------------------

    def uplink_load(
        self, flows: Optional[Sequence[Tuple[int, int]]] = None
    ) -> Dict[str, int]:
        """Traffic crossing each hypervisor's uplink.

        With *flows* given, loads are computed by placing them on the
        current routing; otherwise the all-to-all of the running VMs is
        assumed (the neutral default when no telemetry is supplied).
        """
        cloud = self.cloud
        if flows is None:
            lids = [vm.lid for vm in cloud.vms.values() if vm.is_running]
            flows = all_to_all_flows(lids)
        loads: Dict[str, int] = {h: 0 for h in cloud.hypervisors}
        if not flows:
            return loads
        from repro.sm.routing.base import RoutingRequest

        request = RoutingRequest.from_topology(cloud.topology)
        report: LinkLoadReport = link_loads(
            cloud.sm.current_tables, request, list(flows)
        )
        # A hypervisor's uplink load = traffic its leaf forwards to it plus
        # traffic it injects; approximate with the leaf's port toward it.
        for name, hyp in cloud.hypervisors.items():
            attach = hyp.uplink_port.remote
            if attach is None:
                continue
            # Count flows terminating at or originating from this node.
            for vm in hyp.vms.values():
                for src, dst in flows:
                    if dst == vm.lid or src == vm.lid:
                        loads[name] += 1
        return loads

    # -- proposals ----------------------------------------------------------------

    def propose(
        self,
        *,
        flows: Optional[Sequence[Tuple[int, int]]] = None,
        count: int = 1,
    ) -> List[MigrationProposal]:
        """Up to *count* cooling proposals, hottest source first."""
        if count < 1:
            raise ReproError("count must be >= 1")
        cloud = self.cloud
        loads = self.uplink_load(flows)
        hot_order = sorted(loads, key=loads.get, reverse=True)
        cold_order = sorted(loads, key=loads.get)
        proposals: List[MigrationProposal] = []
        used_vms: set = set()
        reserved: Dict[str, int] = {}
        mode = "swap" if cloud.scheme.name == "prepopulated" else "copy"
        for hot in hot_order:
            if len(proposals) >= count:
                break
            src = cloud.hypervisors[hot]
            vms = [vm for vm in src.vms.values() if vm.is_running]
            if not vms or loads[hot] == 0:
                continue
            vm = max(vms, key=lambda v: v.lid)
            if vm.name in used_vms:
                continue
            dest_name = next(
                (
                    c
                    for c in cold_order
                    if c != hot
                    and cloud.hypervisors[c].free_vf_count
                    - reserved.get(c, 0)
                    > 0
                ),
                None,
            )
            if dest_name is None:
                break
            dest = cloud.hypervisors[dest_name]
            other = (
                dest.vswitch.free_vfs()[reserved.get(dest_name, 0)].lid
                if mode == "swap"
                else dest.pf_lid
            )
            if other is None:
                continue
            sky = plan_skyline(
                cloud.topology,
                vm_lid=vm.lid,
                other_lid=other,
                mode=mode,
                src_port=src.uplink_port,
                dest_port=dest.uplink_port,
            )
            proposals.append(
                MigrationProposal(
                    vm_name=vm.name,
                    source=hot,
                    destination=dest_name,
                    reason=(
                        f"uplink load {loads[hot]} (hottest) ->"
                        f" {loads[dest_name]} (coldest with capacity)"
                    ),
                    predicted_switches=sky.n_prime,
                    predicted_max_smps=sky.max_smps,
                    intra_leaf=sky.intra_leaf,
                )
            )
            used_vms.add(vm.name)
            reserved[dest_name] = reserved.get(dest_name, 0) + 1
        return proposals

    def apply(self, proposal: MigrationProposal):
        """Execute one proposal through the normal migration path."""
        return self.cloud.live_migrate(proposal.vm_name, proposal.destination)
