"""Parallel live migrations (section VI-D, last paragraphs).

Migrations whose skylines are disjoint touch disjoint switch state, so their
LFT updates can be issued concurrently without interfering — "in the case
of live migrations within leaf switches we could have as many concurrent
migrations as there exists leaf switches". The executor:

1. predicts each planned migration's skyline;
2. batches pairwise-disjoint skylines with
   :func:`~repro.core.skyline.admit_concurrent`;
3. executes batch by batch, modelling the batch's reconfiguration time as
   the *maximum* member time (its members run in parallel) while the SMP
   counts simply add up.

The speedup metric compares that concurrent makespan against a fully serial
execution of the same migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.migration import MigrationReport
from repro.core.skyline import MigrationSkyline, admit_concurrent, plan_skyline
from repro.errors import MigrationError

__all__ = ["ParallelMigrationReport", "ParallelMigrationExecutor"]


@dataclass
class ParallelMigrationReport:
    """Outcome of one parallel-migration campaign."""

    batches: List[List[MigrationReport]] = field(default_factory=list)

    @property
    def num_batches(self) -> int:
        """Sequential rounds needed."""
        return len(self.batches)

    @property
    def migrations(self) -> List[MigrationReport]:
        """All executed migrations, flattened in execution order."""
        return [r for batch in self.batches for r in batch]

    @property
    def total_migrations(self) -> int:
        """Count of migrations performed."""
        return sum(len(b) for b in self.batches)

    @property
    def total_lft_smps(self) -> int:
        """SMPs add up regardless of concurrency."""
        return sum(r.reconfig.lft_smps for r in self.migrations)

    @property
    def serial_reconfig_seconds(self) -> float:
        """Reconfiguration time if everything ran back to back."""
        return sum(r.reconfig.serial_time for r in self.migrations)

    @property
    def concurrent_reconfig_seconds(self) -> float:
        """Makespan with intra-batch parallelism (max per batch)."""
        return sum(
            max((r.reconfig.serial_time for r in batch), default=0.0)
            for batch in self.batches
        )

    @property
    def speedup(self) -> float:
        """Serial / concurrent reconfiguration time."""
        c = self.concurrent_reconfig_seconds
        return self.serial_reconfig_seconds / c if c > 0 else 1.0


class ParallelMigrationExecutor:
    """Plans, batches and executes a set of migrations on one cloud."""

    def __init__(self, cloud) -> None:
        self.cloud = cloud

    def plan(
        self, moves: Sequence[Tuple[str, str]]
    ) -> List[List[Tuple[str, str]]]:
        """Batch *moves* (vm name, destination hypervisor) into concurrent
        rounds with pairwise-disjoint skylines."""
        skylines: List[MigrationSkyline] = []
        keyed: Dict[Tuple[int, int], Tuple[str, str]] = {}
        mode = "swap" if self.cloud.scheme.name == "prepopulated" else "copy"
        reserved: Dict[str, int] = {}
        for vm_name, dest_name in moves:
            vm = self.cloud.vms.get(vm_name)
            if vm is None or not vm.is_running:
                raise MigrationError(f"{vm_name} is not a running VM")
            src = self.cloud.hypervisors[vm.hypervisor_name]
            dest = self.cloud.hypervisors[dest_name]
            if dest.free_vf_count - reserved.get(dest_name, 0) <= 0:
                raise MigrationError(f"{dest_name} lacks capacity for the plan")
            reserved[dest_name] = reserved.get(dest_name, 0) + 1
            free = dest.vswitch.free_vfs()
            vf = free[reserved[dest_name] - 1] if mode == "swap" else free[0]
            other = vf.lid if mode == "swap" else dest.pf_lid
            if other is None:
                raise MigrationError(f"{dest_name} has no usable LID")
            sky = plan_skyline(
                self.cloud.topology,
                vm_lid=vm.lid,
                other_lid=other,
                mode=mode,
                src_port=src.uplink_port,
                dest_port=dest.uplink_port,
            )
            skylines.append(sky)
            keyed[(sky.vm_lid, sky.other_lid)] = (vm_name, dest_name)
        batches = admit_concurrent(skylines)
        return [
            [keyed[(s.vm_lid, s.other_lid)] for s in batch]
            for batch in batches
        ]

    def execute(
        self, moves: Sequence[Tuple[str, str]]
    ) -> ParallelMigrationReport:
        """Plan and run all *moves*; returns the per-batch reports."""
        report = ParallelMigrationReport()
        for batch in self.plan(moves):
            executed: List[MigrationReport] = []
            for vm_name, dest_name in batch:
                executed.append(self.cloud.live_migrate(vm_name, dest_name))
            report.batches.append(executed)
        return report
