"""Topology-agnostic dynamic reconfiguration (paper section V-C, Algorithm 1).

The vSwitch property — every VF shares the uplink with its PF — lets a live
migration be absorbed by *editing* LFT entries instead of recomputing paths:

* **LID swapping** (prepopulated LIDs, V-C1): exchange the migrating VM's
  LID entry with the entry of the destination VF's LID on every switch
  where they differ. 1 SMP per switch if both LIDs share a 64-LID block,
  2 otherwise (``m' in {1, 2}``).
* **LID copying** (dynamic assignment, V-C2): overwrite the VM LID's entry
  with the destination hypervisor PF's entry — always at most 1 SMP per
  switch (``m' = 1``).

Only the ``n' <= n`` switches whose entries actually differ receive SMPs
(section VI-B), and because switch LIDs never move, the updates may use
destination-based routing, dropping the per-hop directed-routing overhead
``r`` (equation (5)).

Path computation time is zero by construction — the headline result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.constants import LFT_BLOCK_SIZE, LFT_DROP_PORT
from repro.errors import ReconfigError, ReconfigRollbackError, TransportError
from repro.fabric.lft import lft_block_of
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block
from repro.obs.hub import get_hub, span
from repro.sm.subnet_manager import SubnetManager

__all__ = ["ReconfigReport", "VSwitchReconfigurer"]


@dataclass
class ReconfigReport:
    """Cost accounting of one LFT reconfiguration — the paper's
    ``vSwitch RC_t = n' * m' * k`` quantities."""

    mode: str = ""
    lft_smps: int = 0
    switches_updated: int = 0  # n'
    blocks_per_switch: Dict[str, int] = field(default_factory=dict)
    serial_time: float = 0.0
    pipelined_time: float = 0.0
    path_compute_seconds: float = 0.0  # identically 0 — kept for symmetry

    @property
    def max_blocks_on_one_switch(self) -> int:
        """The realized ``m'`` (0 if nothing changed)."""
        return max(self.blocks_per_switch.values(), default=0)

    @property
    def total_seconds_serial(self) -> float:
        """End-to-end reconfiguration time, serial SMPs."""
        return self.path_compute_seconds + self.serial_time


class VSwitchReconfigurer:
    """Executes the paper's swap/copy LFT updates against a live subnet.

    Operates on the switches' actual LFTs (the hardware state), keeps the
    SM's recorded routing function consistent, and accounts every SMP
    through the SM's transport. ``destination_routed`` selects the
    equation-(5) optimization of sending the LFT updates with
    destination-based routing instead of directed routing.
    """

    def __init__(
        self,
        sm: SubnetManager,
        *,
        destination_routed: bool = False,
        pipeline_window: int = 8,
    ) -> None:
        if pipeline_window < 1:
            raise ReconfigError("pipeline window must be >= 1")
        self.sm = sm
        self.destination_routed = destination_routed
        self.pipeline_window = pipeline_window

    # -- public operations ---------------------------------------------------

    def swap_lids(
        self,
        lid_a: int,
        lid_b: int,
        *,
        limit_switches: Optional[Set[int]] = None,
    ) -> ReconfigReport:
        """Prepopulated-LIDs migration: swap two LID entries on all switches.

        Implements UPDATELFTBLOCKSONALLSWITCHES of Algorithm 1 for the
        swapping variant: iterate every LFT block of every switch, send an
        SMP only where the block actually changes.

        ``limit_switches`` restricts the update to a skyline subset (the
        section VI-D minimal reconfiguration). Only safe when every LID
        involved attaches *within* the limited region — the intra-leaf
        special case — which is validated here.
        """
        if lid_a == lid_b:
            raise ReconfigError("cannot swap a LID with itself")
        self._check_lid_known(lid_a)
        self._check_lid_known(lid_b)
        if limit_switches is not None:
            self._check_limit_safe((lid_a, lid_b), limit_switches)
        report = ReconfigReport(mode="swap")
        before = self.sm.transport.stats.snapshot()
        undo: List[Tuple] = []
        with span("lft_swap", lid_a=lid_a, lid_b=lid_b):
            try:
                for sw in self._switch_sweep(limit_switches):
                    pa, pb = sw.lft.get(lid_a), sw.lft.get(lid_b)
                    if pa == pb:
                        continue  # same forwarding port: switch keeps balance
                    blocks = sorted({lft_block_of(lid_a), lft_block_of(lid_b)})
                    desired = sw.lft.clone()
                    desired.swap(lid_a, lid_b)
                    self._send_blocks(sw, desired, blocks, report, undo)
            except TransportError:
                self._rollback_blocks(undo)
                raise
            self._finish(report, before)
        self._record_swap(lid_a, lid_b, limit_switches)
        return report

    def copy_path(
        self,
        template_lid: int,
        target_lid: int,
        *,
        limit_switches: Optional[Set[int]] = None,
    ) -> ReconfigReport:
        """Dynamic-assignment migration/creation: *target_lid* inherits
        *template_lid*'s forwarding port on every switch (V-C2).

        ``template_lid`` is the LID of the PF of the hypervisor hosting (or
        about to host) the VM. At most one block per switch changes.
        ``limit_switches`` as in :meth:`swap_lids`.
        """
        if template_lid == target_lid:
            raise ReconfigError("template and target LIDs must differ")
        self._check_lid_known(template_lid)
        if limit_switches is not None:
            self._check_limit_safe((template_lid,), limit_switches)
        report = ReconfigReport(mode="copy")
        before = self.sm.transport.stats.snapshot()
        block = lft_block_of(target_lid)
        undo: List[Tuple] = []
        with span("lft_copy", template_lid=template_lid, target_lid=target_lid):
            try:
                for sw in self._switch_sweep(limit_switches):
                    src_port = sw.lft.get(template_lid)
                    if sw.lft.get(target_lid) == src_port:
                        continue
                    desired = sw.lft.clone()
                    desired.copy_entry(template_lid, target_lid)
                    self._send_blocks(sw, desired, [block], report, undo)
            except TransportError:
                self._rollback_blocks(undo)
                raise
            self._finish(report, before)
        self._record_copy(template_lid, target_lid, limit_switches)
        return report

    def copy_paths(
        self,
        pairs: List[Tuple[int, int]],
        *,
        limit_switches: Optional[Set[int]] = None,
    ) -> ReconfigReport:
        """Batched :meth:`copy_path`: program many (template, target)
        copies in one sweep, coalescing SMPs per (switch, block).

        This is what lets N concurrent tenant boots cost far fewer SMPs
        than N sequential ones: freshly assigned LIDs are consecutive, so
        on each switch many of them land in the same 64-entry LFT block
        and one ``SubnSet(LFT)`` carries all of their entries at once.
        All-or-nothing like the single-copy path: a transport failure
        rolls every applied block back and re-raises.
        """
        if not pairs:
            return ReconfigReport(mode="copy-batch")
        seen: Set[int] = set()
        for template_lid, target_lid in pairs:
            if template_lid == target_lid:
                raise ReconfigError("template and target LIDs must differ")
            if target_lid in seen:
                raise ReconfigError(
                    f"target LID {target_lid} appears twice in the batch"
                )
            seen.add(target_lid)
            self._check_lid_known(template_lid)
        if limit_switches is not None:
            self._check_limit_safe(
                tuple(t for t, _ in pairs), limit_switches
            )
        report = ReconfigReport(mode="copy-batch")
        before = self.sm.transport.stats.snapshot()
        undo: List[Tuple] = []
        with span("lft_copy_batch", pairs=len(pairs)):
            try:
                for sw in self._switch_sweep(limit_switches):
                    changed = [
                        (tpl, tgt)
                        for tpl, tgt in pairs
                        if sw.lft.get(tgt) != sw.lft.get(tpl)
                    ]
                    if not changed:
                        continue
                    desired = sw.lft.clone()
                    for tpl, tgt in changed:
                        desired.copy_entry(tpl, tgt)
                    blocks = sorted({lft_block_of(tgt) for _, tgt in changed})
                    self._send_blocks(sw, desired, blocks, report, undo)
            except TransportError:
                self._rollback_blocks(undo)
                raise
            self._finish(report, before)
        for template_lid, target_lid in pairs:
            self._record_copy(template_lid, target_lid, limit_switches)
        return report

    def safe_swap_lids(
        self,
        lid_a: int,
        lid_b: int,
        *,
        limit_switches: Optional[Set[int]] = None,
    ) -> ReconfigReport:
        """The section VI-C *partially-static* swap.

        Before the actual entry swap, the LIDs being moved are pointed at
        port 255 on every switch that will be updated, so in-flight traffic
        toward them is dropped instead of racing the reconfiguration (and
        the transition can never contribute the moved LIDs' channels to a
        dependency cycle). Costs the extra "n' SMPs (1 SMP per switch that
        needs to be updated, to invalidate the LID of the migrated VM
        before the actual reconfiguration)" the paper prices in — here one
        invalidation SMP per affected (switch, changed block).
        """
        if lid_a == lid_b:
            raise ReconfigError("cannot swap a LID with itself")
        self._check_lid_known(lid_a)
        self._check_lid_known(lid_b)
        if limit_switches is not None:
            self._check_limit_safe((lid_a, lid_b), limit_switches)
        report = ReconfigReport(mode="safe-swap")
        before = self.sm.transport.stats.snapshot()
        undo: List[Tuple] = []
        with span("lft_safe_swap", lid_a=lid_a, lid_b=lid_b):
            affected = [
                sw
                for sw in self._switch_sweep(limit_switches)
                if sw.lft.get(lid_a) != sw.lft.get(lid_b)
            ]
            try:
                # Phase 1: invalidate the moving LIDs on the affected
                # switches.
                with span("invalidate_phase"):
                    for sw in affected:
                        desired = sw.lft.clone()
                        desired.drop(lid_a)
                        desired.drop(lid_b)
                        blocks = sorted(
                            {lft_block_of(lid_a), lft_block_of(lid_b)}
                        )
                        self._send_blocks(sw, desired, blocks, report, undo)
                # Phase 2: program the swapped entries (recomputed per switch
                # from the pre-invalidation ports captured in the SM's
                # tables).
                tbl = self.sm.current_tables
                with span("swap_phase"):
                    for sw in affected:
                        desired = sw.lft.clone()
                        if tbl is not None and max(lid_a, lid_b) <= tbl.top_lid:
                            pa = tbl.port_for(sw.index, lid_a)
                            pb = tbl.port_for(sw.index, lid_b)
                        else:  # pragma: no cover - tables always exist
                            pa, pb = desired.get(lid_a), desired.get(lid_b)
                        desired.set(lid_a, pb)
                        desired.set(lid_b, pa)
                        blocks = sorted(
                            {lft_block_of(lid_a), lft_block_of(lid_b)}
                        )
                        self._send_blocks(sw, desired, blocks, report, undo)
            except TransportError:
                self._rollback_blocks(undo)
                raise
            # blocks_per_switch was incremented per phase; n' is the number of
            # distinct switches, not phase-entries.
            report.switches_updated = len(affected)
            self._finish(report, before)
        self._record_swap(lid_a, lid_b, limit_switches)
        return report

    def invalidate_lid(self, lid: int) -> ReconfigReport:
        """Partially-static pre-step (section VI-C): forward *lid* to port
        255 on every switch so in-flight traffic toward the migrating VM is
        dropped rather than risking a transition deadlock."""
        report = ReconfigReport(mode="invalidate")
        before = self.sm.transport.stats.snapshot()
        block = lft_block_of(lid)
        undo: List[Tuple] = []
        with span("lft_invalidate", lid=lid):
            try:
                for sw in self.sm.topology.switches:
                    if sw.lft.get(lid) == LFT_DROP_PORT:
                        continue
                    desired = sw.lft.clone()
                    desired.drop(lid)
                    self._send_blocks(sw, desired, [block], report, undo)
            except TransportError:
                self._rollback_blocks(undo)
                raise
            self._finish(report, before)
        if self.sm.current_tables is not None:
            tbl = self.sm.current_tables
            if lid <= tbl.top_lid:
                tbl.ports[:, lid] = LFT_DROP_PORT
                if self.sm.ha is not None:
                    self.sm.ha.note_vswitch({"op": "invalidate", "lid": lid})
        return report

    # -- prediction (no mutation) -----------------------------------------------

    def predict_swap(self, lid_a: int, lid_b: int) -> Tuple[int, int]:
        """(n', total SMPs) a swap would cost, without performing it."""
        n_prime = 0
        smps = 0
        blocks = {lft_block_of(lid_a), lft_block_of(lid_b)}
        for sw in self.sm.topology.switches:
            if sw.lft.get(lid_a) != sw.lft.get(lid_b):
                n_prime += 1
                smps += len(blocks)
        return n_prime, smps

    def predict_copy(self, template_lid: int, target_lid: int) -> Tuple[int, int]:
        """(n', total SMPs) a copy would cost, without performing it."""
        n_prime = 0
        for sw in self.sm.topology.switches:
            if sw.lft.get(template_lid) != sw.lft.get(target_lid):
                n_prime += 1
        return n_prime, n_prime

    # -- internals ------------------------------------------------------------------

    def _check_lid_known(self, lid: int) -> None:
        if self.sm.topology.port_of_lid(lid) is None:
            raise ReconfigError(f"LID {lid} is not bound anywhere in the subnet")

    def _switch_sweep(self, limit_switches: Optional[Set[int]]):
        if limit_switches is None:
            return self.sm.topology.switches
        return [
            sw
            for sw in self.sm.topology.switches
            if sw.index in limit_switches
        ]

    def _check_limit_safe(self, lids, limit_switches: Set[int]) -> None:
        """A skyline-limited update is only correct when every involved LID
        terminates inside the limited region: switches outside keep stale
        entries, which still deliver only if they point toward the region.
        That is guaranteed for the intra-leaf case (both hypervisors behind
        one leaf), which is what we validate."""
        for lid in lids:
            port = self.sm.topology.port_of_lid(lid)
            if port is None:
                raise ReconfigError(f"LID {lid} is not bound")
            attach = port.remote
            if attach is None or attach.node.index not in limit_switches:
                raise ReconfigError(
                    f"LID {lid} does not attach within the limited switch"
                    " set; a restricted update would strand traffic"
                )

    def _send_blocks(
        self,
        sw,
        desired,
        blocks: List[int],
        report: ReconfigReport,
        undo: Optional[List[Tuple]] = None,
    ) -> None:
        sent = 0
        # Read the resilience state off the SM at send time: a later
        # enable_resilience() call upgrades reconfigurers that already
        # exist (the cloud layer builds them at scheme construction).
        verified = self.sm.distributor.transactional
        for block in blocks:
            pre = np.array(sw.lft.get_block(block), dtype=np.int16, copy=True)
            entries = desired.get_block(block)
            if np.array_equal(pre, entries):
                continue
            if verified:
                self._write_block_verified(sw, block, entries, pre, undo)
            else:
                result = self.sm.smp_sender.send(
                    make_set_lft_block(
                        sw.name,
                        block,
                        entries,
                        directed=not self.destination_routed,
                    )
                )
                if undo is not None and result.ok:
                    undo.append((sw, block, pre))
            sent += 1
        if sent:
            report.switches_updated += 1
            report.blocks_per_switch[sw.name] = (
                report.blocks_per_switch.get(sw.name, 0) + sent
            )

    #: Read-back rounds per block when the SM runs transactionally.
    VERIFY_ATTEMPTS = 3

    def _write_block_verified(
        self, sw, block: int, entries, pre, undo: Optional[List[Tuple]]
    ) -> None:
        """Write one block and prove it landed intact.

        Mirrors the distributor's transactional mode for the migration
        fast path: a SubnGet(LFT) read-back compares the switch's block
        against the desired entries, and a mismatch — an in-flight
        corruption silently applied — is re-synced. Exhausting the
        attempts raises :class:`TransportError` so the caller's undo-log
        rollback fires and the migration state machine compensates.
        """
        directed = not self.destination_routed
        recorded = False
        for attempt in range(self.VERIFY_ATTEMPTS):
            result = self.sm.smp_sender.send(
                make_set_lft_block(sw.name, block, entries, directed=directed)
            )
            if result.ok and not recorded and undo is not None:
                undo.append((sw, block, pre))
                recorded = True
            readback = self.sm.smp_sender.send(
                Smp(
                    SmpMethod.GET,
                    SmpKind.LFT_BLOCK,
                    sw.name,
                    payload={"block": block},
                    directed=directed,
                )
            )
            if (
                readback.ok
                and readback.data is not None
                and np.array_equal(
                    np.asarray(readback.data["entries"], dtype=np.int16),
                    np.asarray(entries, dtype=np.int16),
                )
            ):
                return
        raise TransportError(
            f"switch {sw.name!r} block {block} failed read-back"
            f" verification after {self.VERIFY_ATTEMPTS} attempts"
        )

    def _rollback_blocks(self, undo: List[Tuple]) -> None:
        """Restore the pre-image of every applied block write, newest first.

        Turns a mid-flight transport failure into a clean "nothing
        happened": the caller sees the original :class:`TransportError`
        and every switch holds its pre-reconfiguration entries. If the
        rollback writes themselves fail, the subnet is genuinely
        inconsistent and :class:`ReconfigRollbackError` says so.
        """
        verified = self.sm.distributor.transactional
        for sw, block, pre in reversed(undo):
            try:
                if verified:
                    # Restores are read-back verified too: a rollback
                    # write silently corrupted in flight would otherwise
                    # leave a state neither old nor new.
                    self._write_block_verified(sw, block, pre, pre, None)
                else:
                    self.sm.smp_sender.send(
                        make_set_lft_block(
                            sw.name,
                            block,
                            pre,
                            directed=not self.destination_routed,
                        )
                    )
            except TransportError as exc:
                raise ReconfigRollbackError(
                    f"rollback of switch {sw.name!r} block {block} failed;"
                    " subnet may be inconsistent"
                ) from exc

    def _finish(self, report: ReconfigReport, before) -> None:
        delta = self.sm.transport.stats.delta_since(before)
        report.lft_smps = delta.lft_update_smps
        report.serial_time = delta.serial_time
        report.pipelined_time = delta.pipelined_time(self.pipeline_window)
        metrics = get_hub().metrics
        metrics.gauge("repro_vswitch_lft_smps", mode=report.mode).set(
            report.lft_smps
        )
        metrics.gauge("repro_vswitch_switches_updated", mode=report.mode).set(
            report.switches_updated
        )
        metrics.gauge("repro_vswitch_m_prime", mode=report.mode).set(
            report.max_blocks_on_one_switch
        )
        metrics.gauge("repro_vswitch_serial_seconds", mode=report.mode).set(
            report.serial_time
        )
        metrics.gauge("repro_vswitch_pipelined_seconds", mode=report.mode).set(
            report.pipelined_time
        )

    def _record_swap(
        self,
        lid_a: int,
        lid_b: int,
        limit_switches: Optional[Set[int]] = None,
    ) -> None:
        """Keep the SM's recorded routing function in sync."""
        tbl = self.sm.current_tables
        if tbl is None:
            return
        top = max(lid_a, lid_b)
        if top > tbl.top_lid:
            return
        rows = (
            slice(None)
            if limit_switches is None
            else sorted(limit_switches)
        )
        col_a = tbl.ports[rows, lid_a].copy()
        tbl.ports[rows, lid_a] = tbl.ports[rows, lid_b]
        tbl.ports[rows, lid_b] = col_a
        if self.sm.ha is not None:
            self.sm.ha.note_vswitch(
                {
                    "op": "swap",
                    "lid_a": lid_a,
                    "lid_b": lid_b,
                    "switches": (
                        None
                        if limit_switches is None
                        else sorted(limit_switches)
                    ),
                }
            )

    def _record_copy(
        self,
        template_lid: int,
        target_lid: int,
        limit_switches: Optional[Set[int]] = None,
    ) -> None:
        tbl = self.sm.current_tables
        if tbl is None:
            return
        if max(template_lid, target_lid) > tbl.top_lid:
            self._grow_tables(target_lid)
            tbl = self.sm.current_tables
            assert tbl is not None
        rows = (
            slice(None)
            if limit_switches is None
            else sorted(limit_switches)
        )
        tbl.ports[rows, target_lid] = tbl.ports[rows, template_lid]
        if self.sm.ha is not None:
            self.sm.ha.note_vswitch(
                {
                    "op": "copy",
                    "template_lid": template_lid,
                    "target_lid": target_lid,
                    "switches": (
                        None
                        if limit_switches is None
                        else sorted(limit_switches)
                    ),
                }
            )

    def _grow_tables(self, lid: int) -> None:
        tbl = self.sm.current_tables
        assert tbl is not None
        if lid <= tbl.top_lid:
            return
        from repro.constants import LFT_UNSET

        n_blocks = lft_block_of(lid) + 1
        width = n_blocks * LFT_BLOCK_SIZE
        grown = np.full(
            (tbl.ports.shape[0], width), LFT_UNSET, dtype=tbl.ports.dtype
        )
        grown[:, : tbl.ports.shape[1]] = tbl.ports
        tbl.ports = grown
