"""Live migration orchestration — Algorithm 1 plus the section VII-B flow.

Reproduces the four-step OpenStack/OpenSM interplay of the paper's
emulation testbed against the simulated fabric:

1. the SR-IOV VF is detached from the VM and the live migration starts;
2. the cloud manager signals the SM with the VM and its destination;
3. the SM reconfigures the network — step (a): one SMP per participating
   hypervisor updates the VF LIDs, plus the vGUID transfer to the
   destination; step (b): the LFT swap/copy of
   :class:`~repro.core.reconfig.VSwitchReconfigurer`;
4. when the migration completes, the destination VF — now holding the VM's
   vGUID — is attached.

The timing model separates memory-copy time (bandwidth-bound, runs while
the VM executes) from *downtime* (VF detach + final pause + reconfiguration
+ VF attach), since SR-IOV passthrough's seconds-scale downtime is the
paper's motivation for making the reconfiguration itself negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import (
    DistributionError,
    MigrationError,
    ReconfigRollbackError,
    SmpTimeoutError,
    TransportError,
)
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.core.lid_schemes import LidScheme
from repro.core.reconfig import ReconfigReport
from repro.core.skyline import MigrationSkyline, plan_skyline
from repro.obs.hub import get_hub, span
from repro.sm.subnet_manager import SubnetManager
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VirtualMachine, VmState

__all__ = ["MigrationTimingModel", "MigrationReport", "LiveMigrationOrchestrator"]


@dataclass(frozen=True)
class MigrationTimingModel:
    """Constants of the migration timeline.

    Defaults are in the ballpark of the paper's context: QDR-generation
    wire speed for the pre-copy, and the seconds-order VF detach/attach
    penalty reported for SR-IOV passthrough migration (Guay et al.,
    references [9]/[18]).
    """

    memory_copy_bandwidth: float = 4.0e9  # bytes/s over the migration network
    vf_detach_seconds: float = 0.8
    vf_attach_seconds: float = 1.2
    final_pause_seconds: float = 0.05

    def copy_seconds(self, vm_memory_bytes: int) -> float:
        """Pre-copy duration for a VM image of the given size."""
        if vm_memory_bytes < 0:
            raise MigrationError("vm_memory_bytes must be non-negative")
        return vm_memory_bytes / self.memory_copy_bandwidth


@dataclass
class MigrationReport:
    """Everything one live migration cost."""

    vm_name: str
    source: str
    destination: str
    vm_lid: int
    mode: str
    skyline: MigrationSkyline
    reconfig: ReconfigReport
    address_update_smps: int = 0  # step (a) SMPs to the hypervisors
    copy_seconds: float = 0.0
    downtime_seconds: float = 0.0
    #: ``completed`` | ``rolled_back`` (subnet restored to the exact
    #: pre-migration state) | ``failed`` (rollback itself failed — the
    #: subnet may be inconsistent and needs a full reconfiguration).
    outcome: str = "completed"
    #: The error that aborted the migration, when not completed.
    failure: Optional[str] = None
    #: Retransmissions / timeouts / retry waits over the whole migration
    #: window — the fault-injection overhead on top of the ideal n'·m'.
    smp_retries: int = 0
    smp_timeouts: int = 0
    retry_wait_seconds: float = 0.0

    @property
    def completed(self) -> bool:
        """True iff the VM runs at the destination."""
        return self.outcome == "completed"

    @property
    def total_smps(self) -> int:
        """Step (a) + step (b) SMPs."""
        return self.address_update_smps + self.reconfig.lft_smps

    @property
    def switches_updated(self) -> int:
        """The realized n'."""
        return self.reconfig.switches_updated


class LiveMigrationOrchestrator:
    """Executes live migrations end to end against one subnet."""

    def __init__(
        self,
        sm: SubnetManager,
        scheme: LidScheme,
        *,
        timing: Optional[MigrationTimingModel] = None,
        default_vm_memory_bytes: int = 4 << 30,
        minimal_intra_leaf: bool = False,
    ) -> None:
        self.sm = sm
        self.scheme = scheme
        self.timing = timing or MigrationTimingModel()
        self.default_vm_memory_bytes = default_vm_memory_bytes
        #: Apply the section VI-D minimal reconfiguration when the source
        #: and destination share a leaf switch: update only that leaf,
        #: accepting the (locally invisible) loss of per-LID spreading on
        #: the rest of the fabric.
        self.minimal_intra_leaf = minimal_intra_leaf
        #: Observers called with each MigrationReport (e.g. the SA cache).
        self.listeners: List[Callable[[MigrationReport], None]] = []

    def migrate(
        self,
        vm: VirtualMachine,
        source: Hypervisor,
        destination: Hypervisor,
        *,
        vm_memory_bytes: Optional[int] = None,
    ) -> MigrationReport:
        """Migrate *vm* from *source* to *destination* (Algorithm 1 MAIN).

        On a healthy fabric this is the exact four-step flow; on a lossy
        one it is a small state machine. A transport failure before the
        point of no return rolls everything back — the VF re-attaches at
        the source, the LFT entries are restored (the reconfigurer already
        unwound them), the vGUID returns — and the report says
        ``rolled_back``. If even the rollback cannot be completed the
        report says ``failed`` and the subnet needs a full
        reconfiguration. Failures are reported, not raised, so bulk
        workloads (churn, chaos) keep going.
        """
        self._validate(vm, source, destination)
        vm_lid = vm.lid
        assert vm_lid is not None  # _validate checked

        dest_vf = destination.vswitch.first_free_vf()
        mode = "swap" if self.scheme.name == "prepopulated" else "copy"
        other_lid = dest_vf.lid if mode == "swap" else destination.pf_lid
        if other_lid is None:
            raise MigrationError(
                f"destination {destination.name} has no usable LID for {mode}"
            )
        skyline = plan_skyline(
            self.sm.topology,
            vm_lid=vm_lid,
            other_lid=other_lid,
            mode=mode,
            src_port=source.uplink_port,
            dest_port=destination.uplink_port,
        )

        run_before = self.sm.transport.stats.snapshot()
        with span(
            "migration",
            vm=vm.name,
            source=source.name,
            destination=destination.name,
            mode=mode,
        ) as sp:
            # Step 1: detach the VF; the pre-copy starts.
            vm.state = VmState.MIGRATING
            src_vf = vm.detach_vf()
            src_vf.detach()
            copy_seconds = self.timing.copy_seconds(
                vm_memory_bytes
                if vm_memory_bytes is not None
                else self.default_vm_memory_bytes
            )

            prev_dest_guid = dest_vf.guid
            vguid_programmed = False
            address_update_smps = 0
            outcome = "completed"
            failure: Optional[str] = None
            reconfig = ReconfigReport(mode=mode)
            try:
                # Step 2+3a: the SM learns about the migration and updates
                # the participating hypervisors' VF addresses — one SMP
                # each, plus the vGUID transfer to the destination
                # (sections V-C(a), VII-B step 3).
                before = self.sm.transport.stats.snapshot()
                with span("address_update"):
                    self._send_checked(
                        Smp(
                            SmpMethod.SET,
                            SmpKind.PORT_INFO,
                            source.hca.name,
                            payload={
                                "port": 1,
                                "vf": src_vf.index,
                                "unset_lid": vm_lid,
                            },
                        )
                    )
                    self._send_checked(
                        Smp(
                            SmpMethod.SET,
                            SmpKind.PORT_INFO,
                            destination.hca.name,
                            payload={
                                "port": 1,
                                "vf": dest_vf.index,
                                "set_lid": vm_lid,
                            },
                        )
                    )
                    result = self._send_checked(
                        Smp(
                            SmpMethod.SET,
                            SmpKind.VGUID,
                            destination.hca.name,
                            payload={"vf": dest_vf.index, "vguid": vm.vguid},
                        )
                    )
                assert result.data is not None
                destination.vswitch.set_vguid(dest_vf, result.data["vguid"])
                vguid_programmed = True
                address_update_smps = (
                    self.sm.transport.stats.snapshot().total_smps
                    - before.total_smps
                )

                # Step 3b: the LFT updates (UPDATELFTBLOCKSONALLSWITCHES),
                # or the leaf-only minimal variant when enabled and
                # applicable.
                limit = None
                if self.minimal_intra_leaf and skyline.intra_leaf:
                    leaf = source.uplink_port.remote
                    assert leaf is not None
                    limit = {leaf.node.index}
                reconfig = self.scheme.migrate_lid(
                    vm_lid,
                    source.vswitch,
                    src_vf,
                    destination.vswitch,
                    dest_vf,
                    limit_switches=limit,
                )
            except ReconfigRollbackError as exc:
                # The LFT rollback itself failed: the subnet holds a
                # mixture of old and new entries. Restore the VM-side
                # bookkeeping so the VM keeps running at the source, but
                # report the subnet as needing repair.
                outcome, failure = "failed", str(exc)
                self._restore_vm_at_source(vm, src_vf)
            except (TransportError, DistributionError) as exc:
                # The reconfigurer already restored every touched LFT
                # entry; unwind the address updates and the VM state too.
                outcome, failure = "rolled_back", str(exc)
                try:
                    self._compensate_addresses(
                        vm,
                        source,
                        destination,
                        src_vf,
                        dest_vf,
                        vm_lid,
                        prev_dest_guid,
                        vguid_programmed,
                    )
                except TransportError as rb_exc:
                    outcome = "failed"
                    failure = f"{failure}; address rollback lost: {rb_exc}"
                self._restore_vm_at_source(vm, src_vf)
            else:
                # Step 4: attach the destination VF and finish bookkeeping.
                src_vf.release()
                source.evict_vm(vm)
                dest_vf.attach(vm.name)
                # The scheme already moved the LIDs; attach() must not
                # clobber them.
                destination.vms[vm.name] = vm
                vm.vf = dest_vf
                vm.hypervisor_name = destination.name
                vm.state = VmState.RUNNING
                vm.migrations += 1

            run_delta = self.sm.transport.stats.delta_since(run_before)
            if outcome == "completed":
                downtime = (
                    self.timing.vf_detach_seconds
                    + self.timing.final_pause_seconds
                    + reconfig.total_seconds_serial
                    + self.timing.vf_attach_seconds
                )
            else:
                # The VM still pays detach, the wasted control-plane work
                # (including every retry timeout), and the re-attach at the
                # source.
                downtime = (
                    self.timing.vf_detach_seconds
                    + self.timing.final_pause_seconds
                    + run_delta.serial_time
                    + self.timing.vf_attach_seconds
                )
            report = MigrationReport(
                vm_name=vm.name,
                source=source.name,
                destination=destination.name,
                vm_lid=vm_lid,
                mode=mode,
                skyline=skyline,
                reconfig=reconfig,
                address_update_smps=address_update_smps,
                copy_seconds=copy_seconds,
                downtime_seconds=downtime,
                outcome=outcome,
                failure=failure,
                smp_retries=run_delta.retransmissions,
                smp_timeouts=run_delta.timeouts,
                retry_wait_seconds=run_delta.retry_wait_seconds,
            )
            sp.set_attributes(
                total_smps=report.total_smps,
                lft_smps=reconfig.lft_smps,
                switches_updated=reconfig.switches_updated,
                downtime_seconds=downtime,
            )
            if outcome != "completed":
                sp.set_attributes(outcome=outcome, failure=failure)
        metrics = get_hub().metrics
        if outcome == "completed":
            metrics.counter("repro_migrations_total", mode=mode).add(1)
        else:
            metrics.counter(
                "repro_migration_failures_total", mode=mode, outcome=outcome
            ).add(1)
        metrics.gauge("repro_migration_downtime_seconds", mode=mode).set(
            downtime
        )
        metrics.gauge("repro_migration_total_smps", mode=mode).set(
            report.total_smps
        )
        if outcome == "completed":
            for listener in self.listeners:
                listener(report)
        return report

    # -- failure handling -----------------------------------------------------

    def _send_checked(self, smp: Smp):
        """Send one address-update SMP, surfacing a silent loss.

        With a reliable sender attached, losses already raise after
        retries; with the raw transport a dropped SET simply returns a
        TIMEOUT result — promote that to :class:`SmpTimeoutError` so the
        migration state machine treats both paths the same way.
        """
        result = self.sm.smp_sender.send(smp)
        if not result.ok:
            raise SmpTimeoutError(
                f"address update {smp.kind.value} to {smp.target!r} lost"
            )
        return result

    def _compensate_addresses(
        self,
        vm: VirtualMachine,
        source: Hypervisor,
        destination: Hypervisor,
        src_vf,
        dest_vf,
        vm_lid: int,
        prev_dest_guid,
        vguid_programmed: bool,
    ) -> None:
        """Undo step (a): re-point the VF addresses at the source.

        Mirrors the forward path — one SMP per touched hypervisor, plus
        the vGUID return when it had been transferred.
        """
        with span("address_rollback"):
            self.sm.smp_sender.send(
                Smp(
                    SmpMethod.SET,
                    SmpKind.PORT_INFO,
                    destination.hca.name,
                    payload={
                        "port": 1,
                        "vf": dest_vf.index,
                        "unset_lid": vm_lid,
                    },
                )
            )
            self.sm.smp_sender.send(
                Smp(
                    SmpMethod.SET,
                    SmpKind.PORT_INFO,
                    source.hca.name,
                    payload={
                        "port": 1,
                        "vf": src_vf.index,
                        "set_lid": vm_lid,
                    },
                )
            )
            if vguid_programmed:
                self.sm.smp_sender.send(
                    Smp(
                        SmpMethod.SET,
                        SmpKind.VGUID,
                        destination.hca.name,
                        payload={
                            "vf": dest_vf.index,
                            "vguid": prev_dest_guid,
                        },
                    )
                )
                destination.vswitch.set_vguid(dest_vf, prev_dest_guid)

    @staticmethod
    def _restore_vm_at_source(vm: VirtualMachine, src_vf) -> None:
        """Re-attach the source VF: the VM keeps running where it was."""
        src_vf.release()
        src_vf.attach(vm.name)
        vm.vf = src_vf
        vm.state = VmState.RUNNING

    @staticmethod
    def _validate(
        vm: VirtualMachine, source: Hypervisor, destination: Hypervisor
    ) -> None:
        if source is destination:
            raise MigrationError("source and destination are the same node")
        if vm.name not in source.vms:
            raise MigrationError(f"{vm.name} does not run on {source.name}")
        if vm.state is not VmState.RUNNING:
            raise MigrationError(f"{vm.name} is {vm.state.value}, not running")
        if vm.lid is None:
            raise MigrationError(f"{vm.name} has no LID to migrate")
        if not destination.has_capacity():
            raise MigrationError(f"{destination.name} has no free VF")
