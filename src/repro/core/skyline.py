"""Limited-switch reconfiguration and concurrent migrations (section VI-D).

The deterministic swap/copy of Algorithm 1 visits every switch but only
updates the ``n'`` whose entries differ. This module *predicts* that update
set (the migration's **skyline**, after Lysne & Duato's minimal-
reconfiguration region), detects the special intra-leaf case where exactly
one switch needs updating regardless of topology, and derives how many
migrations can proceed concurrently: migrations with disjoint skylines
touch disjoint switch state and can safely run in parallel (the paper's
"as many concurrent migrations as there exist leaf switches" observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.errors import ReconfigError
from repro.fabric.lft import lft_block_of
from repro.fabric.node import Port, Switch
from repro.fabric.topology import Topology

__all__ = [
    "MigrationSkyline",
    "swap_update_set",
    "copy_update_set",
    "minimal_update_set",
    "is_intra_leaf",
    "plan_skyline",
    "admit_concurrent",
]


@dataclass
class MigrationSkyline:
    """The predicted update footprint of one migration."""

    vm_lid: int
    other_lid: int
    mode: str  # "swap" or "copy"
    switches: Set[int] = field(default_factory=set)
    intra_leaf: bool = False

    @property
    def n_prime(self) -> int:
        """Switches that will receive at least one SMP."""
        return len(self.switches)

    @property
    def max_smps(self) -> int:
        """SMP bound for this migration: 2 per switch for a swap crossing
        LFT blocks, 1 otherwise."""
        if self.mode == "swap" and lft_block_of(self.vm_lid) != lft_block_of(
            self.other_lid
        ):
            return 2 * self.n_prime
        return self.n_prime

    def disjoint_from(self, other: "MigrationSkyline") -> bool:
        """True iff the two migrations touch disjoint switches *and*
        disjoint LIDs (the same LID cannot be in two flights)."""
        if self.switches & other.switches:
            return False
        mine = {self.vm_lid, self.other_lid}
        theirs = {other.vm_lid, other.other_lid}
        return not (mine & theirs)


def swap_update_set(topology: Topology, lid_a: int, lid_b: int) -> Set[int]:
    """Switch indices whose LFTs a swap of *lid_a*/*lid_b* would change.

    A switch already forwarding both LIDs through the same port keeps its
    table — the section VI-B example where migrating within lids routed out
    the same port leaves upstream switches untouched.
    """
    out: Set[int] = set()
    for sw in topology.switches:
        if sw.lft.get(lid_a) != sw.lft.get(lid_b):
            out.add(sw.index)
    return out


def copy_update_set(
    topology: Topology, template_lid: int, target_lid: int
) -> Set[int]:
    """Switch indices a copy of *template_lid* -> *target_lid* would touch."""
    out: Set[int] = set()
    for sw in topology.switches:
        if sw.lft.get(template_lid) != sw.lft.get(target_lid):
            out.add(sw.index)
    return out


def minimal_update_set(
    topology: Topology,
    vm_lid: int,
    new_attach_port: Port,
) -> Set[int]:
    """The *minimum* switches whose LFT entry for *vm_lid* must change.

    This is the section VI-D / Fig. 6 quantity: how much of the network a
    migration *has to* touch for correct delivery at the new location,
    ignoring balance preservation. A switch can keep its stale entry as
    long as the packet, following the mixture of stale and updated
    entries, still reaches the destination — e.g. for an intra-leaf
    migration every stale entry already points toward the (updated) leaf,
    so the minimum is one switch regardless of topology.

    Computed greedily: switches are processed by increasing hop distance
    from the destination leaf; each either chains (via its stale entry)
    into the already-delivering region for free, or must be updated and
    joins it. The result grows with migration distance — the Fig. 6
    gradient — and is what bounds how many migrations can run in parallel.

    ``new_attach_port`` is the HCA port (on the destination hypervisor)
    the LID will live behind.
    """
    attach = new_attach_port.remote
    if attach is None or not isinstance(attach.node, Switch):
        raise ReconfigError(f"{new_attach_port!r} is not cabled to a switch")
    dest_leaf: Switch = attach.node
    delivery_port = attach.num

    # (switch index, out port) -> peer switch index, inter-switch only.
    p2p = {}
    for sw in topology.switches:
        for port in sw.connected_ports():
            peer = port.remote
            assert peer is not None
            if isinstance(peer.node, Switch):
                p2p[(sw.index, port.num)] = peer.node.index

    # Hop distances from the destination leaf (plain BFS on objects: this
    # is a planning call, not a hot path).
    from collections import deque

    n = len(topology.switches)
    dist = [-1] * n
    dist[dest_leaf.index] = 0
    q = deque([dest_leaf.index])
    adj: List[List[int]] = [[] for _ in range(n)]
    for (s, _), t in sorted(p2p.items()):
        adj[s].append(t)
    while q:
        cur = q.popleft()
        for nb in adj[cur]:
            if dist[nb] < 0:
                dist[nb] = dist[cur] + 1
                q.append(nb)

    updates: Set[int] = set()
    delivering: Set[int] = {dest_leaf.index}
    if dest_leaf.lft.get(vm_lid) != delivery_port:
        updates.add(dest_leaf.index)

    order = sorted(
        (sw for sw in topology.switches if sw is not dest_leaf),
        key=lambda sw: (dist[sw.index], sw.index),
    )
    switches = topology.switches
    for sw in order:
        # Follow stale entries through not-yet-classified switches until we
        # hit the delivering region (free) or fail (must update).
        cur = sw
        seen = set()
        while True:
            if cur.index in delivering:
                break
            if cur.index in seen:
                cur = None  # loop: cannot deliver unaided
                break
            seen.add(cur.index)
            nxt = p2p.get((cur.index, cur.lft.get(vm_lid)))
            if nxt is None:
                cur = None  # stale entry exits the fabric at the old host
                break
            cur = switches[nxt]
        if cur is None:
            updates.add(sw.index)
        delivering.add(sw.index)
    return updates


def _leaf_of(port: Port) -> Switch:
    peer = port.remote
    if peer is None or not isinstance(peer.node, Switch):
        raise ReconfigError(f"{port!r} is not attached to a switch")
    return peer.node


def is_intra_leaf(src_port: Port, dest_port: Port) -> bool:
    """True iff source and destination hypervisors hang off the same leaf.

    In that case only that leaf switch ever needs updating, independent of
    topology, because a leaf switch is non-blocking and local changes leave
    the balance of the rest of the network intact (section VI-D).
    """
    return _leaf_of(src_port) is _leaf_of(dest_port)


def plan_skyline(
    topology: Topology,
    *,
    vm_lid: int,
    other_lid: int,
    mode: str,
    src_port: Port,
    dest_port: Port,
) -> MigrationSkyline:
    """Predict one migration's skyline before executing it.

    ``other_lid`` is the destination VF's LID for a swap, or the
    destination PF's LID for a copy.
    """
    if mode == "swap":
        switches = swap_update_set(topology, vm_lid, other_lid)
    elif mode == "copy":
        switches = copy_update_set(topology, other_lid, vm_lid)
    else:
        raise ReconfigError(f"unknown migration mode {mode!r}")
    sky = MigrationSkyline(
        vm_lid=vm_lid,
        other_lid=other_lid,
        mode=mode,
        switches=switches,
        intra_leaf=is_intra_leaf(src_port, dest_port),
    )
    if sky.intra_leaf and sky.switches:
        leaf = _leaf_of(src_port).index
        if sky.switches - {leaf}:
            # The deterministic method may touch more switches than the
            # minimum; record the fact but keep the prediction honest.
            sky.switches = switches
    return sky


def admit_concurrent(
    skylines: Sequence[MigrationSkyline],
) -> List[List[MigrationSkyline]]:
    """Greedy batching of migrations into non-interfering rounds.

    Each returned batch contains pairwise-disjoint skylines and may execute
    concurrently; batches run one after another. With purely intra-leaf
    migrations on distinct leaves this degenerates to a single batch — the
    maximal concurrency the paper points out.
    """
    remaining = list(skylines)
    batches: List[List[MigrationSkyline]] = []
    while remaining:
        batch: List[MigrationSkyline] = []
        rest: List[MigrationSkyline] = []
        for sky in remaining:
            if all(sky.disjoint_from(b) for b in batch):
                batch.append(sky)
            else:
                rest.append(sky)
        batches.append(batch)
        remaining = rest
    return batches
