"""The paper's contribution: vSwitch LID schemes, dynamic reconfiguration,
skyline-limited updates, live migration orchestration, and the analytic
cost model."""

from repro.core.cost_model import (
    Table1Row,
    improvement_percent,
    lftd_time,
    paper_table1,
    table1_row,
    traditional_rc_time,
    vswitch_rc_time,
)
from repro.core.lid_schemes import (
    DynamicLidScheme,
    LidScheme,
    PrepopulatedLidScheme,
    VmBootReport,
)
from repro.core.migration import (
    LiveMigrationOrchestrator,
    MigrationReport,
    MigrationTimingModel,
)
from repro.core.advisor import MigrationAdvisor, MigrationProposal
from repro.core.parallel import ParallelMigrationExecutor, ParallelMigrationReport
from repro.core.reconfig import ReconfigReport, VSwitchReconfigurer
from repro.core.skyline import (
    MigrationSkyline,
    admit_concurrent,
    copy_update_set,
    is_intra_leaf,
    minimal_update_set,
    plan_skyline,
    swap_update_set,
)

__all__ = [
    "lftd_time",
    "traditional_rc_time",
    "vswitch_rc_time",
    "Table1Row",
    "table1_row",
    "paper_table1",
    "improvement_percent",
    "LidScheme",
    "PrepopulatedLidScheme",
    "DynamicLidScheme",
    "VmBootReport",
    "ReconfigReport",
    "VSwitchReconfigurer",
    "MigrationSkyline",
    "plan_skyline",
    "swap_update_set",
    "copy_update_set",
    "minimal_update_set",
    "is_intra_leaf",
    "admit_concurrent",
    "MigrationAdvisor",
    "MigrationProposal",
    "ParallelMigrationExecutor",
    "ParallelMigrationReport",
    "LiveMigrationOrchestrator",
    "MigrationReport",
    "MigrationTimingModel",
]
