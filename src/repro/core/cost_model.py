"""The analytic reconfiguration cost model (paper section VI, eqs. (1)-(5))
and the Table I calculator.

Symbols, as in the paper:

* ``n``  — switches in the subnet; ``n'`` — switches actually updated;
* ``m``  — LFT blocks per switch to distribute; ``m' in {1, 2}``;
* ``k``  — average SMP network traversal time;
* ``r``  — average per-SMP directed-routing overhead;
* ``PCt`` — path computation time; ``LFTDt`` — LFT distribution time.

All functions are pure so they can be swept and cross-checked against the
discrete-event measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.constants import (
    LFT_BLOCKS_FULL_SUBNET,
    UNICAST_LID_COUNT,
)
from repro.errors import ReproError
from repro.fabric.lft import min_blocks_for_lid_count

__all__ = [
    "lftd_time",
    "traditional_rc_time",
    "vswitch_rc_time",
    "Table1Row",
    "table1_row",
    "paper_table1",
    "PAPER_TABLE1_INPUTS",
]


def lftd_time(n: int, m: int, k: float, r: float) -> float:
    """Equation (2): ``LFTDt = n * m * (k + r)`` (serial, directed SMPs)."""
    _check_counts(n=n, m=m)
    _check_times(k=k, r=r)
    return n * m * (k + r)


def traditional_rc_time(pct: float, n: int, m: int, k: float, r: float) -> float:
    """Equation (3): ``RCt = PCt + n * m * (k + r)``."""
    _check_times(pct=pct)
    return pct + lftd_time(n, m, k, r)


def vswitch_rc_time(
    n_prime: int,
    m_prime: int,
    k: float,
    r: float = 0.0,
    *,
    destination_routed: bool = True,
) -> float:
    """Equations (4)/(5): ``vSwitch RCt = n' * m' * (k + r)``, with ``r``
    eliminated when the LFT updates use destination-based routing (switch
    LIDs never move when only VMs migrate)."""
    _check_counts(n=n_prime)
    if m_prime not in (0, 1, 2):
        raise ReproError(f"m' must be 0, 1 or 2, got {m_prime}")
    _check_times(k=k, r=r)
    overhead = 0.0 if destination_routed else r
    return n_prime * m_prime * (k + overhead)


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I."""

    nodes: int
    switches: int
    lids: int
    min_lft_blocks_per_switch: int
    min_smps_full_reconfig: int
    min_smps_vswitch: int
    max_smps_swap: int
    max_smps_copy: int

    def as_paper_columns(self) -> Dict[str, int]:
        """The exact columns printed in Table I (Max column = swap bound)."""
        return {
            "Nodes": self.nodes,
            "Switches": self.switches,
            "LIDs": self.lids,
            "Min LFT Blocks/Switch": self.min_lft_blocks_per_switch,
            "Min SMPs Full RC": self.min_smps_full_reconfig,
            "Min SMPs LID Swap/Copy": self.min_smps_vswitch,
            "Max SMPs LID Swap/Copy": self.max_smps_swap,
        }


def table1_row(nodes: int, switches: int, *, extra_lids: int = 0) -> Table1Row:
    """Compute one Table I row from node and switch counts.

    LIDs consumed = nodes + switches (+ any extra, e.g. prepopulated VFs);
    minimum blocks assume densely packed LIDs; the full-reconfiguration
    minimum sends every used block to every switch; the vSwitch best case
    is always exactly one SMP (subnet-size agnostic); worst cases are
    ``2n`` for a swap and ``n`` for a copy (sections VI-B/VII-C).
    """
    _check_counts(nodes=nodes, switches=switches, extra_lids=extra_lids)
    lids = nodes + switches + extra_lids
    if lids > UNICAST_LID_COUNT:
        raise ReproError(
            f"{lids} LIDs exceed the {UNICAST_LID_COUNT} unicast LID space"
        )
    m = min_blocks_for_lid_count(lids)
    return Table1Row(
        nodes=nodes,
        switches=switches,
        lids=lids,
        min_lft_blocks_per_switch=m,
        min_smps_full_reconfig=switches * m,
        min_smps_vswitch=1,
        max_smps_swap=2 * switches,
        max_smps_copy=switches,
    )


#: (nodes, switches) of the four fat-trees in Table I.
PAPER_TABLE1_INPUTS: List[tuple] = [
    (324, 36),
    (648, 54),
    (5832, 972),
    (11664, 1620),
]


def paper_table1() -> List[Table1Row]:
    """All four rows of the paper's Table I."""
    return [table1_row(nodes, switches) for nodes, switches in PAPER_TABLE1_INPUTS]


def improvement_percent(full_smps: int, vswitch_smps: int) -> float:
    """SMP-count improvement of the vSwitch method over full reconfig.

    The paper quotes e.g. 66.7% for the 324-node subnet (72 vs 216 SMPs)
    and 99.04% for the 11664-node one (3240 vs 336960).
    """
    if full_smps <= 0:
        raise ReproError("full_smps must be positive")
    if vswitch_smps < 0:
        raise ReproError("vswitch_smps must be non-negative")
    return 100.0 * (1.0 - vswitch_smps / full_smps)


def worst_case_blocks_example() -> int:
    """Section VII-C's corner case: a node using the topmost unicast LID
    forces the whole LFT to be populated — 768 SMPs for a single switch."""
    return LFT_BLOCKS_FULL_SUBNET


def _check_counts(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ReproError(f"{name} must be non-negative, got {value}")


def _check_times(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ReproError(f"{name} must be non-negative, got {value}")
