"""Management datagram (MAD/SMP) model: packets, routing modes, transport."""

from repro.mad.smp import Smp, SmpKind, SmpMethod, SmpResult, make_set_lft_block
from repro.mad.transport import SmpTransport, TransportStats
from repro.mad.wire import ATTR_PAYLOAD_SIZE, MAD_SIZE, decode_smp, encode_smp

__all__ = [
    "Smp",
    "SmpKind",
    "SmpMethod",
    "SmpResult",
    "make_set_lft_block",
    "SmpTransport",
    "MAD_SIZE",
    "ATTR_PAYLOAD_SIZE",
    "encode_smp",
    "decode_smp",
    "TransportStats",
]
