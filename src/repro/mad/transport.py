"""SMP delivery: hop counting, latency model and accounting.

The transport realizes the paper's cost decomposition (section VI-A):

* ``k`` — time for an SMP to traverse the network to its target. We derive
  it per packet from the hop distance between the SM's attachment switch and
  the target (footnote 4: switches closer to the SM are reached faster).
* ``r`` — additional per-packet cost of directed routing, charged per hop
  because every intermediate switch rewrites the packet header.

The transport also owns the **SMP counters** used throughout the
reproduction: total SMPs, LFT-update SMPs per reconfiguration, and per-kind
tallies. ``pipelined_time``/``serial_time`` model the SM's LFT-update
pipelining (section VI-B: "In practice, pipelining is used by OpenSM").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TopologyError, UnreachableTargetError
from repro.fabric.graph import bfs_distances
from repro.fabric.node import HCA, Node, Switch
from repro.fabric.topology import Topology
from repro.mad.smp import Smp, SmpKind, SmpMethod, SmpResult, SmpStatus
from repro.obs.flight import SmpFlightEvent
from repro.obs.hub import get_hub
from repro.obs.spans import current_span

__all__ = ["TransportStats", "SmpTransport", "MAD_BYTES"]

#: Default per-hop wire+forwarding latency (the building block of ``k``).
DEFAULT_HOP_LATENCY = 200e-9
#: Default per-hop directed-routing processing overhead (``r`` per hop).
DEFAULT_DR_OVERHEAD = 250e-9
#: Octets charged to the PMA data counters per MAD (one 256-byte datagram,
#: IBA 13.4.2).
MAD_BYTES = 256


@dataclass
class TransportStats:
    """Aggregated accounting of everything sent through a transport.

    The scalar aggregates are always maintained. The *per-SMP sample
    lists* (``latencies``/``hops``/``directed_flags`` — the raw material
    for :func:`repro.analysis.calibration.calibrate`) only grow when
    ``record_samples`` is set, so million-SMP runs stay bounded; the
    always-on per-SMP record lives in the bounded
    :class:`repro.obs.flight.FlightRecorder` instead.
    """

    total_smps: int = 0
    lft_update_smps: int = 0
    directed_smps: int = 0
    destination_routed_smps: int = 0
    total_hops: int = 0
    serial_time: float = 0.0
    #: SMPs that never produced a response (injected drop/corrupt-discard).
    timeouts: int = 0
    #: Fenced writes rejected for carrying a stale SM generation
    #: (split-brain fencing — see :mod:`repro.sm.ha`).
    stale_rejected: int = 0
    #: Retransmissions performed by a ReliableSmpSender on this transport.
    retransmissions: int = 0
    #: SET-LFT payloads silently damaged in flight (injected corruption).
    corrupted: int = 0
    #: Sim time spent waiting out retry timeouts (downtime inflation).
    retry_wait_seconds: float = 0.0
    #: Slowest single SMP seen (maintained even without samples, so
    #: ``pipelined_time`` keeps its lower bound).
    max_latency: float = 0.0
    by_kind: Counter = field(default_factory=Counter)
    by_target: Counter = field(default_factory=Counter)
    #: Opt in via ``SmpTransport(..., record_samples=True)``.
    record_samples: bool = False
    latencies: List[float] = field(default_factory=list)
    #: Per-SMP hop counts, aligned with ``latencies`` (and whether each
    #: packet used directed routing) — the raw material for calibrating
    #: the cost model's k and r from observations.
    hops: List[int] = field(default_factory=list)
    directed_flags: List[bool] = field(default_factory=list)

    def mean_k(self) -> float:
        """Average per-SMP traversal time — the paper's ``k``."""
        if self.latencies:
            return float(np.mean(self.latencies))
        if self.total_smps:
            return self.serial_time / self.total_smps
        return 0.0

    def pipelined_time(self, window: int) -> float:
        """LFT-distribution time with *window* outstanding SMPs.

        With serial issue the total is ``sum(t_i)`` (equation (2)); an SM
        that keeps ``window`` requests in flight finishes in roughly
        ``sum(t_i)/window`` bounded below by the slowest single packet.
        """
        if window < 1:
            raise TopologyError("pipeline window must be >= 1")
        if not self.total_smps:
            return 0.0
        floor = max(self.latencies) if self.latencies else self.max_latency
        return max(self.serial_time / window, floor)

    def snapshot(self) -> "TransportStats":
        """A frozen copy, so callers can diff before/after an operation."""
        out = TransportStats(
            total_smps=self.total_smps,
            lft_update_smps=self.lft_update_smps,
            directed_smps=self.directed_smps,
            destination_routed_smps=self.destination_routed_smps,
            total_hops=self.total_hops,
            serial_time=self.serial_time,
            timeouts=self.timeouts,
            stale_rejected=self.stale_rejected,
            retransmissions=self.retransmissions,
            corrupted=self.corrupted,
            retry_wait_seconds=self.retry_wait_seconds,
            max_latency=self.max_latency,
            by_kind=Counter(self.by_kind),
            by_target=Counter(self.by_target),
            record_samples=self.record_samples,
            latencies=list(self.latencies),
            hops=list(self.hops),
            directed_flags=list(self.directed_flags),
        )
        return out

    def delta_since(self, before: "TransportStats") -> "TransportStats":
        """Stats accumulated since *before* was snapshot."""
        serial = self.serial_time - before.serial_time
        delta_latencies = self.latencies[len(before.latencies):]
        if delta_latencies:
            max_lat = max(delta_latencies)
        else:
            # Without samples the slowest packet *of this window* is
            # unknowable; the overall maximum capped by the window's serial
            # sum is a tight, invariant-preserving bound (pipelined never
            # exceeds serial).
            max_lat = min(self.max_latency, serial) if serial > 0 else 0.0
        return TransportStats(
            total_smps=self.total_smps - before.total_smps,
            lft_update_smps=self.lft_update_smps - before.lft_update_smps,
            directed_smps=self.directed_smps - before.directed_smps,
            destination_routed_smps=(
                self.destination_routed_smps - before.destination_routed_smps
            ),
            total_hops=self.total_hops - before.total_hops,
            serial_time=serial,
            timeouts=self.timeouts - before.timeouts,
            stale_rejected=self.stale_rejected - before.stale_rejected,
            retransmissions=self.retransmissions - before.retransmissions,
            corrupted=self.corrupted - before.corrupted,
            retry_wait_seconds=(
                self.retry_wait_seconds - before.retry_wait_seconds
            ),
            max_latency=max_lat,
            by_kind=self.by_kind - before.by_kind,
            by_target=self.by_target - before.by_target,
            record_samples=self.record_samples,
            latencies=delta_latencies,
            hops=self.hops[len(before.hops):],
            directed_flags=self.directed_flags[len(before.directed_flags):],
        )


class SmpTransport:
    """Delivers SMPs from the SM to fabric nodes, applying their effects.

    The SM attaches behind one HCA port; hop distances are BFS distances on
    the switch graph from that HCA's leaf switch (plus the first hop from
    the HCA and, for HCA targets, the final hop off the fabric).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        sm_node: Optional[Node] = None,
        hop_latency: float = DEFAULT_HOP_LATENCY,
        dr_overhead: float = DEFAULT_DR_OVERHEAD,
        record_samples: bool = False,
    ) -> None:
        self.topology = topology
        self.hop_latency = hop_latency
        self.dr_overhead = dr_overhead
        self.stats = TransportStats(record_samples=record_samples)
        self._sm_node = sm_node
        #: Optional fault injector (see :mod:`repro.faults`). None keeps
        #: the delivery path exactly as it always was — zero cost.
        self._injector = None
        #: Highest SM generation seen on an accepted fenced write — what
        #: "the switches" believe the current master's generation to be.
        #: A fenced write older than this is rejected (split-brain fence).
        self._fabric_generation = 0
        #: Nodes whose SM software is dead: SMInfo MADs addressed to them
        #: get no response (the node's port firmware still answers
        #: PortInfo/NodeInfo — only the SM agent is gone).
        self._dead_sm_nodes: set = set()
        #: Optional SM agent (see :class:`repro.sm.ha.HighAvailabilityManager`)
        #: answering SMInfo GET/SET with real per-candidate state.
        self._sm_agent = None
        self._dist_cache: Optional[np.ndarray] = None
        self._dist_version: int = -1
        #: Duck-typed shared distance cache (anything with a
        #: ``row(switch_index) -> np.ndarray`` method — in practice the
        #: subnet manager's :class:`repro.sm.routing.cache.RoutingState`).
        #: With one attached, the SM and the transport stop computing the
        #: same BFS twice.
        self._distance_source = None

    # -- SM attachment and hop distances ------------------------------------

    @property
    def sm_node(self) -> Node:
        """The node hosting the SM (defaults to the first HCA)."""
        if self._sm_node is None:
            hcas = self.topology.hcas
            if not hcas:
                raise TopologyError("no HCA to host the SM")
            self._sm_node = hcas[0]
        return self._sm_node

    def set_sm_node(self, node: Node) -> None:
        """Move the SM (invalidates the distance cache)."""
        self._sm_node = node
        self._dist_cache = None

    def set_distance_source(self, source) -> None:
        """Attach a shared distance cache (``row(index) -> distances``)."""
        self._distance_source = source
        self._dist_cache = None

    def invalidate_distances(self) -> None:
        """Drop the BFS cache after a topology mutation."""
        self._dist_cache = None

    # -- fault injection ------------------------------------------------------

    @property
    def fault_injector(self):
        """The attached :class:`~repro.faults.FaultInjector`, if any."""
        return self._injector

    def set_fault_injector(self, injector) -> None:
        """Attach (or detach with ``None``) a fault injector."""
        self._injector = injector

    # -- HA hooks (generation fencing, SM liveness, SMInfo agent) ------------

    @property
    def fabric_generation(self) -> int:
        """The highest SM generation accepted on a fenced write so far."""
        return self._fabric_generation

    def set_sm_agent(self, agent) -> None:
        """Attach (or detach with ``None``) an SMInfo agent.

        The agent answers SMInfo MADs with per-candidate state: it must
        provide ``sminfo(node_name) -> dict`` for GETs and
        ``handle_sminfo_set(node_name, payload) -> dict`` for SETs. With
        no agent attached the legacy stub replies are kept.
        """
        self._sm_agent = agent

    def mark_sm_dead(self, node_name: str) -> None:
        """The SM software on *node_name* died: its SMInfo stops answering."""
        self._dead_sm_nodes.add(node_name)

    def mark_sm_alive(self, node_name: str) -> None:
        """The SM software on *node_name* (re)started."""
        self._dead_sm_nodes.discard(node_name)

    def _sm_root_switch(self) -> Switch:
        node = self.sm_node
        if isinstance(node, Switch):
            return node
        assert isinstance(node, HCA)
        up = node.uplink_switch()
        if up is None:
            raise TopologyError(f"SM host {node.name!r} is not cabled to a switch")
        return up

    def _switch_distances(self) -> np.ndarray:
        version = self.topology.version
        if self._dist_cache is None or self._dist_version != version:
            root = self._sm_root_switch().index
            if self._distance_source is not None:
                self._dist_cache = self._distance_source.row(root)
            else:
                self._dist_cache = bfs_distances(
                    self.topology.fabric_view(), root
                )
            self._dist_version = version
        return self._dist_cache

    def hops_to(self, target: Node) -> int:
        """Hop count from the SM host to *target*.

        One hop from the SM's HCA onto its leaf switch, BFS hops across the
        fabric, plus one hop down to an HCA target.
        """
        dist = self._switch_distances()
        base = 0 if isinstance(self.sm_node, Switch) else 1
        if isinstance(target, Switch):
            d = int(dist[target.index])
            if d < 0:
                raise TopologyError(f"switch {target.name!r} unreachable from SM")
            if target is self.sm_node:
                return 0
            return base + d
        assert isinstance(target, HCA)
        if target is self.sm_node:
            return 0
        up = target.uplink_switch()
        if up is None:
            raise TopologyError(f"HCA {target.name!r} is not cabled to a switch")
        d = int(dist[up.index])
        if d < 0:
            raise TopologyError(f"HCA {target.name!r} unreachable from SM")
        return base + d + 1

    # -- delivery ------------------------------------------------------------

    def send(self, smp: Smp) -> SmpResult:
        """Deliver one SMP: apply its effect, account for it, and time it.

        Beyond the transport's own counters, every delivery advances the
        observability hub's sim clock, lands one structured event in the
        SMP flight recorder, increments the labeled
        ``repro_smp_total`` counter, and — when a span is open in this
        context — attaches a per-SMP event to it.

        With a fault injector attached the delivery may be dropped
        (returned ``status`` is :attr:`~repro.mad.smp.SmpStatus.TIMEOUT`
        and the effect is *not* applied), silently corrupted (SET-LFT
        payload damaged in flight and applied damaged), or delayed. A
        target that does not exist or has no live path from the SM raises
        :class:`~repro.errors.UnreachableTargetError` — distinguishable
        from a timeout, so retry layers do not burn their budget on a
        dead node.
        """
        target = self._resolve_target(smp)
        try:
            hops = self.hops_to(target)
        except UnreachableTargetError:
            raise
        except TopologyError as exc:
            # "unreachable from SM" / "not cabled" — a dead path, not a
            # timeout; retry layers must not retransmit into it.
            raise UnreachableTargetError(str(exc)) from None
        latency = hops * self.hop_latency
        if smp.directed:
            latency += hops * self.dr_overhead

        # PMA accounting: the MAD leaves through the SM host's endpoint
        # port whatever happens to it on the wire; arrival is counted in
        # :meth:`_deliver` so dropped packets never show up as received.
        tx = self._endpoint_counters(self.sm_node)
        tx.xmit_packets += 1
        tx.xmit_data += MAD_BYTES

        status = SmpStatus.DELIVERED
        fault = "delivered"
        data: Optional[Dict[str, object]] = None
        st = self.stats
        if (
            smp.kind is SmpKind.SM_INFO
            and smp.target in self._dead_sm_nodes
        ):
            # The node's port is up but its SM agent is dead: the MAD
            # arrives and nothing answers. No injector RNG is consumed,
            # so SM death events never shift the SMP fault sequence.
            status = SmpStatus.TIMEOUT
            st.timeouts += 1
            fault = "no-response"
            decision = None
        else:
            decision = (
                self._injector.decide(smp, now=get_hub().now())
                if self._injector is not None
                else None
            )
        if fault == "no-response":
            pass
        elif decision is None or decision.action.value == "deliver":
            data, status, fault = self._deliver(smp, target, status, fault)
        elif decision.action.value == "delay":
            latency += decision.delay_seconds
            fault = "delayed"
            data, status, fault = self._deliver(smp, target, status, fault)
        elif decision.action.value == "corrupt":
            # The damaged payload is applied — a *silent* failure only a
            # read-back (transactional distribution) can catch.
            damaged = Smp(
                smp.method,
                smp.kind,
                smp.target,
                payload={
                    **smp.payload,
                    "entries": self._injector.corrupt_entries(
                        smp.payload["entries"]
                    ),
                },
                directed=smp.directed,
                generation=smp.generation,
            )
            data, status, fault = self._deliver(
                damaged, target, status, fault
            )
            if status is SmpStatus.DELIVERED:
                st.corrupted += 1
                fault = "corrupt"
                # The receiving port accepted damaged symbols.
                self._endpoint_counters(target).symbol_errors += 1
        else:  # drop: the packet dies on the wire, the sender times out
            status = SmpStatus.TIMEOUT
            st.timeouts += 1
            fault = "dropped"

        st.total_smps += 1
        st.total_hops += hops
        st.serial_time += latency
        if latency > st.max_latency:
            st.max_latency = latency
        if st.record_samples:
            st.latencies.append(latency)
            st.hops.append(hops)
            st.directed_flags.append(smp.directed)
        st.by_kind[smp.kind] += 1
        st.by_target[smp.target] += 1
        if smp.directed:
            st.directed_smps += 1
        else:
            st.destination_routed_smps += 1
        if smp.is_lft_update:
            st.lft_update_smps += 1

        self._observe(smp, hops, latency, fault=fault)
        return SmpResult(
            smp=smp, hops=hops, latency=latency, data=data, status=status
        )

    @staticmethod
    def _endpoint_counters(node: Node):
        """PMA counters of a node's MAD endpoint (switch port 0, HCA port 1).

        Management traffic terminates at the endpoint — port 0 is the
        switch management port, not a transit port — so MAD accounting
        never perturbs the transit-port xmit==rcv conservation invariant.
        """
        return node.port_counters(0 if isinstance(node, Switch) else 1)

    def _deliver(
        self, smp: Smp, target: Node, status: SmpStatus, fault: str
    ):
        """Apply one SMP that survived the wire, enforcing the fence.

        A fenced write (SET LFT/PortInfo carrying a generation) older
        than the fabric's generation is rejected without effect — the
        switch answers with a bad status instead of applying it, which is
        exactly how a stale master re-emerging after a partition heal is
        stopped from corrupting routing state.
        """
        rx = self._endpoint_counters(target)
        rx.rcv_packets += 1
        rx.rcv_data += MAD_BYTES
        if smp.generation is not None and smp.is_fenced_write:
            if smp.generation < self._fabric_generation:
                self.stats.stale_rejected += 1
                get_hub().metrics.counter(
                    "repro_sm_stale_writes_rejected_total",
                    kind=smp.kind.name.lower(),
                ).add(1)
                return None, SmpStatus.STALE_GENERATION, "stale-rejected"
            self._fabric_generation = smp.generation
        return self._apply(smp, target), status, fault

    def _resolve_target(self, smp: Smp) -> Node:
        """Look the target up and validate its liveness.

        Destination-routed SMPs additionally need the target to hold a
        live (bound) LID — a packet addressed to an unbound LID has no
        forwarding entry anywhere and can never arrive. The check only
        applies once a LID manager has populated the registry; on a bare
        fabric with no LIDs assigned at all, destination routing stays a
        modeling convenience (and directed routing is what discovery
        actually uses there, as on real fabrics).
        """
        if smp.target not in self.topology:
            raise UnreachableTargetError(
                f"SMP target {smp.target!r} does not exist in the subnet"
            )
        target = self.topology.node(smp.target)
        if not smp.directed and self.topology.num_lids:
            lid = target.lid
            if lid is None or self.topology.port_of_lid(lid) is None:
                raise UnreachableTargetError(
                    f"SMP target {smp.target!r} has no live LID for"
                    " destination routing"
                )
        return target

    def charge_wait(self, seconds: float) -> None:
        """Account a retry-timeout wait: sim time passes, nothing is sent.

        Used by :class:`~repro.mad.reliable.ReliableSmpSender` between
        retransmissions; the wait lands in ``serial_time`` (it *is*
        control-plane wall time — the downtime inflation chaos runs
        measure) and separately in ``retry_wait_seconds``.
        """
        if seconds <= 0:
            return
        self.stats.serial_time += seconds
        self.stats.retry_wait_seconds += seconds
        get_hub().advance(seconds)

    def _observe(
        self, smp: Smp, hops: int, latency: float, *, fault: str = "delivered"
    ) -> None:
        """Feed the observability layer (flight recorder, span, metrics)."""
        hub = get_hub()
        now = hub.advance(latency)
        kind = smp.kind.name.lower()
        hub.flight.record(
            SmpFlightEvent(
                time=now,
                kind=kind,
                method=smp.method.name.lower(),
                target=smp.target,
                hops=hops,
                directed=smp.directed,
                latency=latency,
                lft_update=smp.is_lft_update,
                status=fault,
            )
        )
        sp = current_span()
        if sp is not None:
            sp.record_smp(
                now,
                kind=kind,
                target=smp.target,
                hops=hops,
                directed=smp.directed,
                latency=latency,
                lft_update=smp.is_lft_update,
            )
        hub.metrics.counter(
            "repro_smp_total",
            kind=kind,
            routed="directed" if smp.directed else "destination",
        ).add(1)
        if fault in ("dropped", "corrupt", "delayed"):
            hub.metrics.counter(
                "repro_faults_injected_total", action=fault
            ).add(1)
        if fault in ("dropped", "no-response"):
            hub.metrics.counter("repro_smp_timeouts_total", kind=kind).add(1)

    def _apply(self, smp: Smp, target: Node) -> Optional[Dict[str, object]]:
        """Execute the management operation on the target node."""
        if smp.kind is SmpKind.LFT_BLOCK:
            if not isinstance(target, Switch):
                raise TopologyError(
                    f"LFT SMP addressed to non-switch {target.name!r}"
                )
            block = int(smp.payload["block"])
            if smp.method is SmpMethod.SET:
                target.lft.load_block(block, smp.payload["entries"])
                return None
            return {"block": block, "entries": target.lft.get_block(block)}

        if smp.kind is SmpKind.PORT_INFO:
            port_num = int(smp.payload.get("port", 0 if isinstance(target, Switch) else 1))
            port = (
                target.management_port
                if isinstance(target, Switch) and port_num == 0
                else target.port(port_num)
            )
            if smp.method is SmpMethod.SET:
                if "lid" in smp.payload:
                    port.lid = smp.payload["lid"]
                return None
            return {"lid": port.lid, "port": port_num}

        if smp.kind is SmpKind.NODE_INFO:
            return {
                "name": target.name,
                "node_type": target.node_type.value,
                "num_ports": target.num_ports,
                "node_guid": target.node_guid,
            }

        if smp.kind is SmpKind.VGUID:
            # Alias-GUID programming: the effect is applied by the SR-IOV
            # layer (the HCA firmware equivalent); the transport only
            # accounts and times the packet. Carry the payload back so the
            # caller can apply it.
            return dict(smp.payload)

        if smp.kind is SmpKind.SM_INFO:
            if self._sm_agent is not None:
                if smp.method is SmpMethod.SET:
                    return self._sm_agent.handle_sminfo_set(
                        target.name, dict(smp.payload)
                    )
                return self._sm_agent.sminfo(target.name)
            return {"sm": self.sm_node.name}

        if smp.kind is SmpKind.NOTICE:
            # A trap notice riding VL15 to the SM: the transport only
            # times and accounts the MAD; the trap pipeline that sent it
            # decides what to do with the event.
            return dict(smp.payload)

        if smp.kind is SmpKind.PORT_COUNTERS:
            # PMA PortCounters: the attribute the PerfManager sweeps.
            port_sel = smp.payload.get("port")
            if smp.method is SmpMethod.SET:
                if smp.payload.get("reset"):
                    if port_sel is None:
                        for num in sorted(target.counters):
                            target.counters[num].reset()
                    else:
                        target.port_counters(int(port_sel)).reset()
                return None
            if port_sel is not None:
                num = int(port_sel)
                return {
                    "node": target.name,
                    "ports": {num: target.port_counters(num).pma_view()},
                }
            # All ports that have ever counted anything, plus the MAD
            # endpoint port itself (which this GET is incrementing).
            low = 0 if isinstance(target, Switch) else 1
            return {
                "node": target.name,
                "ports": {
                    num: target.counters[num].pma_view()
                    for num in sorted(target.counters)
                    if low <= num <= target.num_ports
                },
            }

        raise TopologyError(f"unhandled SMP kind {smp.kind}")  # pragma: no cover
