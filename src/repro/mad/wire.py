"""MAD wire format: encode/decode SMPs to their 256-byte datagrams.

Every IB management datagram is exactly 256 bytes: a 24-byte common MAD
header followed by class-specific fields and a 64-byte attribute payload
(IBA 13.4). Encoding the simulator's SMPs to real wire layout keeps the
model honest about what fits where — notably that one LFT block (64
one-byte port entries) is exactly one attribute payload, which is *why*
LFTs are updated in 64-LID blocks and why Table I counts what it counts.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

import numpy as np

from repro.constants import LFT_BLOCK_SIZE
from repro.errors import ReproError
from repro.mad.smp import Smp, SmpKind, SmpMethod

__all__ = [
    "MAD_SIZE",
    "ATTR_PAYLOAD_SIZE",
    "encode_smp",
    "decode_smp",
]

#: Every MAD is exactly 256 bytes on the wire.
MAD_SIZE = 256
#: The attribute data area of an SMP (IBA: SMP data field).
ATTR_PAYLOAD_SIZE = 64

#: Management class: directed-route SMP vs LID-routed SMP (IBA 13.4.4).
_MGMT_CLASS_LID_ROUTED = 0x01
_MGMT_CLASS_DIRECTED = 0x81

_METHOD_CODES = {SmpMethod.GET: 0x01, SmpMethod.SET: 0x02}
_METHOD_BY_CODE = {v: k for k, v in _METHOD_CODES.items()}

#: Attribute IDs (IBA 14.2.5; VirtualGUIDInfo uses a vendor range).
_ATTR_IDS = {
    SmpKind.NODE_INFO: 0x0011,
    SmpKind.PORT_INFO: 0x0015,
    SmpKind.LFT_BLOCK: 0x0019,
    SmpKind.SM_INFO: 0x0020,
    SmpKind.NOTICE: 0x0002,
    SmpKind.VGUID: 0xFF30,
}
_ATTR_BY_ID = {v: k for k, v in _ATTR_IDS.items()}

#: Common MAD header: base version, mgmt class, class version, method,
#: status, hop pointer, hop count, TID, attr id, reserved, attr modifier.
_HEADER = struct.Struct(">BBBBHBBQHHI")


def _target_bytes(target: str) -> bytes:
    raw = target.encode("utf-8")
    if len(raw) > 40:
        raise ReproError(f"target name {target!r} too long for the wire stub")
    return raw.ljust(40, b"\x00")


def encode_smp(smp: Smp, *, tid: int = 0) -> bytes:
    """Serialize one SMP to its 256-byte wire form.

    The attribute payload carries the LFT block for LFT writes; other
    attributes encode their scalar fields. The (simulation-only) target
    name rides in the reserved area so :func:`decode_smp` can round-trip
    without a subnet-wide GUID directory.
    """
    if not 0 <= tid < (1 << 64):
        raise ReproError("TID out of 64-bit range")
    mgmt_class = (
        _MGMT_CLASS_DIRECTED if smp.directed else _MGMT_CLASS_LID_ROUTED
    )
    attr_id = _ATTR_IDS[smp.kind]
    attr_mod = 0
    payload = bytearray(ATTR_PAYLOAD_SIZE)

    if smp.kind is SmpKind.LFT_BLOCK:
        attr_mod = int(smp.payload.get("block", 0))
        if smp.method is SmpMethod.SET:
            entries = np.asarray(smp.payload["entries"], dtype=np.int16)
            if len(entries) != LFT_BLOCK_SIZE:
                raise ReproError("LFT payload must be 64 entries")
            payload[:] = bytes(int(e) & 0xFF for e in entries)
    elif smp.kind is SmpKind.PORT_INFO:
        attr_mod = int(smp.payload.get("port", 0))
        lid = smp.payload.get("lid") or smp.payload.get("set_lid") or 0
        struct.pack_into(">H", payload, 0, int(lid) & 0xFFFF)
    elif smp.kind is SmpKind.VGUID:
        attr_mod = int(smp.payload.get("vf", 0))
        struct.pack_into(">Q", payload, 0, int(smp.payload.get("vguid", 0)))

    # The reserved halfword carries the SM generation fence (vendor use:
    # high bit = fenced, low 15 bits = generation modulo 2^15).
    reserved = 0
    if smp.generation is not None:
        reserved = 0x8000 | (int(smp.generation) & 0x7FFF)

    header = _HEADER.pack(
        1,  # base version
        mgmt_class,
        1,  # class version
        _METHOD_CODES[smp.method],
        0,  # status
        0,  # hop pointer
        0,  # hop count
        tid,
        attr_id,
        reserved,
        attr_mod,
    )
    body = header + _target_bytes(smp.target) + bytes(payload)
    return body.ljust(MAD_SIZE, b"\x00")


def decode_smp(wire: bytes) -> Tuple[Smp, int]:
    """Parse a 256-byte datagram back into an (Smp, tid) pair."""
    if len(wire) != MAD_SIZE:
        raise ReproError(f"MAD must be {MAD_SIZE} bytes, got {len(wire)}")
    (
        base_version,
        mgmt_class,
        _class_version,
        method_code,
        _status,
        _hop_ptr,
        _hop_cnt,
        tid,
        attr_id,
        reserved,
        attr_mod,
    ) = _HEADER.unpack_from(wire, 0)
    if base_version != 1:
        raise ReproError(f"unsupported MAD base version {base_version}")
    try:
        method = _METHOD_BY_CODE[method_code]
        kind = _ATTR_BY_ID[attr_id]
    except KeyError:
        raise ReproError(
            f"unknown method/attribute 0x{method_code:02x}/0x{attr_id:04x}"
        ) from None
    directed = mgmt_class == _MGMT_CLASS_DIRECTED
    if not directed and mgmt_class != _MGMT_CLASS_LID_ROUTED:
        raise ReproError(f"unknown management class 0x{mgmt_class:02x}")
    off = _HEADER.size
    target = wire[off : off + 40].rstrip(b"\x00").decode("utf-8")
    payload_bytes = wire[off + 40 : off + 40 + ATTR_PAYLOAD_SIZE]

    payload: Dict[str, object] = {}
    if kind is SmpKind.LFT_BLOCK:
        payload["block"] = attr_mod
        if method is SmpMethod.SET:
            payload["entries"] = np.frombuffer(
                payload_bytes, dtype=np.uint8
            ).astype(np.int16)
    elif kind is SmpKind.PORT_INFO:
        payload["port"] = attr_mod
        (lid,) = struct.unpack_from(">H", payload_bytes, 0)
        if lid:
            payload["lid"] = lid
    elif kind is SmpKind.VGUID:
        payload["vf"] = attr_mod
        (vguid,) = struct.unpack_from(">Q", payload_bytes, 0)
        payload["vguid"] = vguid

    generation = (reserved & 0x7FFF) if reserved & 0x8000 else None
    return (
        Smp(
            method,
            kind,
            target,
            payload=payload,
            directed=directed,
            generation=generation,
        ),
        tid,
    )
