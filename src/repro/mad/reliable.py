"""MAD-faithful reliability on top of the lossy SMP transport.

MADs are unacknowledged UD datagrams: a real SM learns about a lost SMP
only by timing out, and OpenSM's MAD layer retransmits with a capped
exponential backoff (``timeout``/``retries`` in ``opensm.conf``). The
:class:`ReliableSmpSender` reproduces that contract on top of
:class:`~repro.mad.transport.SmpTransport`:

* a delivered SMP returns immediately, exactly as before;
* a timed-out SMP costs one timeout wait (charged to the sim clock — this
  is the downtime inflation chaos runs measure), then is retransmitted
  with exponentially growing, capped timeouts;
* exhausted retries raise :class:`~repro.errors.SmpTimeoutError`;
* an :class:`~repro.errors.UnreachableTargetError` from the transport
  propagates untouched — retransmitting into a dead path burns the retry
  budget for nothing, and callers handle the two failures differently
  (resync vs. rollback).

Every retransmission is a real :meth:`~repro.mad.transport.SmpTransport.send`,
so it lands in all the usual accounting: ``TransportStats`` (including the
achieved-vs-ideal n'·m' LFT-SMP counts the chaos report compares), the
flight recorder, and per-SMP span events. Recovery sequences additionally
get their own ``smp_retry`` span and the
``repro_smp_retries_total`` / ``repro_smp_timeouts_total`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    FaultInjectionError,
    SmpTimeoutError,
    StaleGenerationError,
)
from repro.mad.smp import Smp, SmpResult, SmpStatus
from repro.mad.transport import SmpTransport
from repro.obs.hub import get_hub

__all__ = ["RetryPolicy", "ReliableSmpSender"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring an SMP undeliverable.

    ``retries`` counts *retransmissions* (total attempts = retries + 1).
    The wait before retransmission *i* (0-based) is
    ``timeout_s * backoff ** i`` capped at ``max_timeout_s`` — OpenSM's
    ``transaction_timeout``/``max_msg_retries`` shape.
    """

    retries: int = 4
    timeout_s: float = 1e-3
    backoff: float = 2.0
    max_timeout_s: float = 8e-3

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise FaultInjectionError("retries must be >= 0")
        if self.timeout_s <= 0:
            raise FaultInjectionError("timeout_s must be > 0")
        if self.backoff < 1.0:
            raise FaultInjectionError("backoff must be >= 1")
        if self.max_timeout_s < self.timeout_s:
            raise FaultInjectionError("max_timeout_s must be >= timeout_s")

    def timeout_for(self, attempt: int) -> float:
        """Timeout wait after (0-based) attempt *attempt*."""
        return min(self.timeout_s * self.backoff**attempt, self.max_timeout_s)

    def worst_case_wait(self) -> float:
        """Total sim time burned if every attempt times out."""
        return sum(self.timeout_for(i) for i in range(self.retries + 1))

    def waits(self):
        """The backoff waits, in order: one per allowed retry.

        ``for wait in policy.waits():`` is the retry-loop shape shared by
        the MAD layer and the control-plane service's request retries —
        the service charges each wait to the sim clock between attempts,
        so a request's worst-case latency is exactly
        :meth:`worst_case_wait` on both layers.
        """
        for attempt in range(self.retries):
            yield self.timeout_for(attempt)


class ReliableSmpSender:
    """Retransmitting wrapper around an :class:`SmpTransport`.

    Drop-in for the transport at every ``.send()`` call site; the
    underlying transport stays reachable as :attr:`transport` for stats
    and topology access.
    """

    def __init__(
        self,
        transport: SmpTransport,
        policy: Optional[RetryPolicy] = None,
        *,
        generation: Optional[int] = None,
    ) -> None:
        self.transport = transport
        self.policy = policy if policy is not None else RetryPolicy()
        #: The SM generation this sender stamps on fenced writes (SET
        #: LFT/PortInfo). ``None`` sends unfenced, the pre-HA behaviour.
        #: The HA manager gives every SM candidate its own sender so a
        #: stale master keeps writing with its old generation — and gets
        #: fenced — while the new master writes with the bumped one.
        self.generation = generation

    # Delegations that make the sender a drop-in for the transport at the
    # call sites that also peek at accounting or the SM attachment.
    @property
    def stats(self):
        """The underlying transport's :class:`TransportStats`."""
        return self.transport.stats

    @property
    def topology(self):
        """The underlying transport's topology."""
        return self.transport.topology

    @property
    def sm_node(self):
        """The node hosting the SM."""
        return self.transport.sm_node

    def send(self, smp: Smp) -> SmpResult:
        """Deliver *smp*, retransmitting on timeout.

        Returns the first delivered result. Raises
        :class:`SmpTimeoutError` once the retry budget is exhausted,
        :class:`~repro.errors.StaleGenerationError` when a fenced write
        is rejected (retrying a fenced-out write cannot succeed — the
        caller must re-run the SMInfo comparison), and lets
        :class:`~repro.errors.UnreachableTargetError` propagate untouched.
        """
        if (
            self.generation is not None
            and smp.generation is None
            and smp.is_fenced_write
        ):
            smp.generation = self.generation
        result = self.transport.send(smp)
        if result.ok:
            return result
        if result.status is SmpStatus.STALE_GENERATION:
            raise self._stale(smp)
        return self._retry(smp)

    def _stale(self, smp: Smp) -> StaleGenerationError:
        return StaleGenerationError(
            f"SMP {smp.method.value}({smp.kind.value}) to {smp.target!r}"
            f" fenced out: generation {smp.generation} is behind the"
            f" fabric's {self.transport.fabric_generation}"
        )

    def _retry(self, smp: Smp) -> SmpResult:
        hub = get_hub()
        policy = self.policy
        kind = smp.kind.name.lower()
        with hub.span(
            "smp_retry", target=smp.target, kind=kind, directed=smp.directed
        ) as sp:
            for attempt in range(1, policy.retries + 1):
                wait = policy.timeout_for(attempt - 1)
                self.transport.charge_wait(wait)
                self.transport.stats.retransmissions += 1
                hub.metrics.counter(
                    "repro_smp_retries_total", kind=kind, target=smp.target
                ).add(1)
                sp.add_event(
                    "retransmit", hub.now(), attempt=attempt, wait=wait
                )
                result = self.transport.send(smp)
                if result.ok:
                    sp.set_attributes(attempts=attempt + 1, recovered=True)
                    return result
                if result.status is SmpStatus.STALE_GENERATION:
                    sp.set_attributes(attempts=attempt + 1, recovered=False)
                    raise self._stale(smp)
            # We also wait out the last attempt's timeout before giving up.
            self.transport.charge_wait(policy.timeout_for(policy.retries))
            sp.set_attributes(attempts=policy.retries + 1, recovered=False)
        raise SmpTimeoutError(
            f"SMP {smp.method.value}({smp.kind.value}) to {smp.target!r}"
            f" lost after {policy.retries + 1} attempts"
        )
