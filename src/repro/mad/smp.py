"""Subnet Management Packets (SMPs).

SMPs are the management datagrams the SM exchanges with switches and HCAs on
QP0. Two routing modes exist (paper section VI-A):

* **directed routing** — the packet carries the hop-by-hop path; every
  intermediate switch must process and rewrite the header (hop pointer,
  reverse path), adding the per-hop overhead the paper calls ``r``. OpenSM
  uses directed routing for everything because it works before LFTs exist.
* **destination-based (LID) routing** — forwarded immediately by the LFTs;
  usable by the paper's reconfiguration because switch LIDs never move when
  only VMs migrate (this removes ``r`` — equation (5)).

An :class:`Smp` is a small record; the semantics of applying it live in
:mod:`repro.mad.transport`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.constants import LFT_BLOCK_SIZE
from repro.errors import TopologyError

__all__ = [
    "SmpKind",
    "SmpMethod",
    "SmpStatus",
    "SmInfoAttrMod",
    "Smp",
    "SmpResult",
    "make_set_lft_block",
]


class SmpMethod(enum.Enum):
    """The management method of the packet."""

    GET = "SubnGet"
    SET = "SubnSet"


class SmpKind(enum.Enum):
    """Management attribute the packet addresses."""

    NODE_INFO = "NodeInfo"
    PORT_INFO = "PortInfo"
    LFT_BLOCK = "LinearForwardingTable"
    VGUID = "VirtualGUIDInfo"  # alias-GUID programming on a hypervisor HCA
    SM_INFO = "SMInfo"
    NOTICE = "Notice"  # trap notices (IBA 13.4.8/13.4.9) riding VL15
    #: PMA PortCounters read/reset — what the PerfManager sweeps. GETs
    #: return the 32-bit wrapped per-port counter view; SETs with a
    #: ``reset`` payload clear the counters (PortCounters with reset bits).
    PORT_COUNTERS = "PortCounters"


class SmInfoAttrMod(enum.IntEnum):
    """AttributeModifier values of SubnSet(SMInfo) (IBA 14.4.1).

    The master-election handshake of the HA protocol: a takeover sends
    HANDOVER to the previous master and DISABLE to the remaining
    standbys, which answer ACKNOWLEDGE; DISCOVER re-arms a standby's
    polling after a demotion.
    """

    HANDOVER = 1
    ACKNOWLEDGE = 2
    DISABLE = 3
    STANDBY = 4
    DISCOVER = 5


@dataclass
class Smp:
    """One subnet management packet.

    ``target`` names the node the packet is addressed to; ``directed`` picks
    the routing mode; ``payload`` carries attribute-specific fields (e.g.
    ``block``/``entries`` for LFT writes, ``lid``/``port`` for PortInfo).
    """

    method: SmpMethod
    kind: SmpKind
    target: str
    payload: Dict[str, Any] = field(default_factory=dict)
    directed: bool = True
    #: SM generation number stamped on fenced writes (LFT/PortInfo SETs).
    #: ``None`` means unfenced — the pre-HA behaviour. The transport
    #: rejects fenced writes older than the fabric's generation, which is
    #: how a stale master re-emerging after a partition heal is stopped
    #: (see :mod:`repro.sm.ha`).
    generation: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is SmpKind.LFT_BLOCK and self.method is SmpMethod.SET:
            entries = self.payload.get("entries")
            if entries is None or len(entries) != LFT_BLOCK_SIZE:
                raise TopologyError(
                    "SET LinearForwardingTable SMP needs a 64-entry payload"
                )
            if "block" not in self.payload:
                raise TopologyError("SET LFT SMP needs a block index")

    @property
    def is_lft_update(self) -> bool:
        """True for SubnSet(LinearForwardingTable) — the packets the paper
        counts in Table I."""
        return self.kind is SmpKind.LFT_BLOCK and self.method is SmpMethod.SET

    @property
    def is_fenced_write(self) -> bool:
        """True for the writes the split-brain fence guards: SubnSet of
        an LFT block or of PortInfo (the routing-state mutations a stale
        master must not be allowed to apply)."""
        return self.method is SmpMethod.SET and self.kind in (
            SmpKind.LFT_BLOCK,
            SmpKind.PORT_INFO,
        )


class SmpStatus(enum.Enum):
    """What happened to one SMP on the wire.

    MADs are unacknowledged UD datagrams: the sender learns about a lost
    packet only by timing out. ``TIMEOUT`` therefore covers both an
    injected drop and a response that never arrived — the sender cannot
    tell the difference, exactly as on real fabrics.
    """

    DELIVERED = "delivered"
    TIMEOUT = "timeout"
    #: A fenced write rejected because its SM generation is behind the
    #: fabric's (split-brain fencing; the effect was NOT applied). Unlike
    #: a timeout this is definitive — retransmitting cannot succeed.
    STALE_GENERATION = "stale-generation"


@dataclass
class SmpResult:
    """Outcome of delivering one SMP."""

    smp: Smp
    hops: int
    latency: float
    data: Optional[Dict[str, Any]] = None
    status: SmpStatus = SmpStatus.DELIVERED

    @property
    def ok(self) -> bool:
        """True iff the SMP was delivered (and answered, for GETs)."""
        return self.status is SmpStatus.DELIVERED


def make_set_lft_block(
    target: str, block: int, entries: np.ndarray, *, directed: bool = True
) -> Smp:
    """Convenience constructor for the LFT-block write packet."""
    return Smp(
        method=SmpMethod.SET,
        kind=SmpKind.LFT_BLOCK,
        target=target,
        payload={"block": int(block), "entries": np.asarray(entries, dtype=np.int16)},
        directed=directed,
    )
