"""Fault plans: the declarative half of the fault-injection layer.

A :class:`FaultPlan` says *what* should go wrong; the
:class:`~repro.faults.injector.FaultInjector` decides *when*, using RNG
streams derived from the plan's seed. Plans are plain data — hashable
enough to log, compare and rebuild — and can be parsed from the compact
``key=value[,key=value...]`` syntax the ``repro chaos`` CLI accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjectionError

__all__ = ["ScriptedFault", "FaultPlan"]

#: ``--inject`` spec keys understood by :meth:`FaultPlan.from_spec`.
_SPEC_KEYS = {
    "smp-drop": "smp_drop_rate",
    "smp-corrupt": "smp_corrupt_rate",
    "smp-delay": "smp_delay_rate",
    "link-flap": "link_flap_rate",
    "switch-fail": "switch_failure_rate",
}

#: Integer-valued ``--inject`` keys (steps and counts, not rates).
_INT_SPEC_KEYS = {
    "sm-death": "sm_death_step",
    "partition": "partition_step",
    "heal-after": "partition_heal_steps",
    "flap-storm": "link_flap_storm_step",
    "storm-size": "link_flap_storm_size",
    "rewire": "rewire_ops",
    "kill-service": "service_kill_step",
    "tenant-storm": "tenant_storm_step",
    "storm-factor": "tenant_storm_factor",
}


@dataclass(frozen=True)
class ScriptedFault:
    """One precisely aimed fault, fired at a hook point or a sim time.

    ``nth`` counts *matching* SMPs (1-based): a rule with
    ``target="switch7", kind="lft_block", nth=3`` drops exactly the third
    LFT-block SMP addressed to switch7. ``at_time`` instead arms the rule
    from the given sim time onward (first match fires it). Each rule fires
    ``count`` times, then disarms.
    """

    action: str = "drop"  # drop | corrupt | delay
    target: Optional[str] = None  # node name; None matches any target
    kind: Optional[str] = None  # SmpKind name, lower-case; None = any
    nth: int = 1
    at_time: Optional[float] = None
    count: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("drop", "corrupt", "delay"):
            raise FaultInjectionError(
                f"unknown scripted action {self.action!r}"
            )
        if self.nth < 1:
            raise FaultInjectionError("nth is 1-based and must be >= 1")
        if self.count < 1:
            raise FaultInjectionError("count must be >= 1")
        if self.action == "delay" and self.delay_seconds <= 0:
            raise FaultInjectionError("delay faults need delay_seconds > 0")


def _check_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """Everything a chaos run injects, fully determined by ``seed``.

    SMP-level probabilities apply per send; ``per_target_drop`` overrides
    the global drop rate for named nodes (a "lossy link" to one switch).
    The fabric-level knobs (``link_flap_rate``, ``switch_failure_rate``,
    ``sm_death_step``) are consumed by the chaos runner, which draws from
    the injector's dedicated fabric RNG stream so SMP fault decisions and
    fabric events never perturb each other's sequences.
    """

    seed: int = 0
    smp_drop_rate: float = 0.0
    smp_corrupt_rate: float = 0.0
    smp_delay_rate: float = 0.0
    smp_delay_seconds: float = 1e-3
    per_target_drop: Dict[str, float] = field(default_factory=dict)
    scripted: Tuple[ScriptedFault, ...] = ()
    #: Probability that one chaos step flaps a random non-partitioning
    #: inter-switch link (down, reroute, back up, reroute).
    link_flap_rate: float = 0.0
    #: Probability that one chaos step kills a random spine switch.
    switch_failure_rate: float = 0.0
    #: Chaos step (0-based) at which the master SM dies mid-run; the
    #: standby must take over and complete any pending distribution.
    sm_death_step: Optional[int] = None
    #: Chaos step at which the master SM is partitioned from the rest of
    #: the management plane: SMInfo SMPs to/from it are dropped (its node
    #: firmware still answers PortInfo/NodeInfo — the management
    #: *process* is unreachable, the cable is not cut).
    partition_step: Optional[int] = None
    #: Steps the partition lasts before healing. At the heal the old
    #: master re-emerges and tries to act; the generation fence must
    #: reject its writes and demote it.
    partition_heal_steps: int = 4
    #: Chaos step at which one link flaps repeatedly in a burst — the
    #: trap pipeline must coalesce and throttle instead of paying one
    #: reroute per flap.
    link_flap_storm_step: Optional[int] = None
    #: Down/up cycles in the storm burst.
    link_flap_storm_size: int = 6
    #: Live topology mutations to spread evenly over the run (the chaos
    #: ``rewire`` knob): each picks an add/remove/restore link-or-switch
    #: mutation from the fabric RNG stream, drives it through
    #: ``SubnetManager.handle_topology_change`` and audits convergence.
    rewire_ops: int = 0
    #: Chaos step (0-based) at which the control-plane worker is killed
    #: mid-sweep (``ServiceKilled`` at the next journal append) and then
    #: warm-recovered from its intent journal. The run must end with an
    #: audit-clean cloud and every submission accounted for.
    service_kill_step: Optional[int] = None
    #: Chaos step at which every tenant bursts ``tenant_storm_factor``×
    #: its usual request count at once — the admission-control stress:
    #: the service must shed with retry-after, never drop silently.
    tenant_storm_step: Optional[int] = None
    #: Multiplier applied to per-step submissions during the storm.
    tenant_storm_factor: int = 10

    def __post_init__(self) -> None:
        _check_rate("smp_drop_rate", self.smp_drop_rate)
        _check_rate("smp_corrupt_rate", self.smp_corrupt_rate)
        _check_rate("smp_delay_rate", self.smp_delay_rate)
        _check_rate("link_flap_rate", self.link_flap_rate)
        _check_rate("switch_failure_rate", self.switch_failure_rate)
        if self.smp_delay_seconds < 0:
            raise FaultInjectionError("smp_delay_seconds must be >= 0")
        if self.partition_heal_steps < 1:
            raise FaultInjectionError("partition_heal_steps must be >= 1")
        if self.link_flap_storm_size < 1:
            raise FaultInjectionError("link_flap_storm_size must be >= 1")
        if self.rewire_ops < 0:
            raise FaultInjectionError("rewire_ops must be >= 0")
        if self.tenant_storm_factor < 1:
            raise FaultInjectionError("tenant_storm_factor must be >= 1")
        for name, rate in self.per_target_drop.items():
            _check_rate(f"per_target_drop[{name!r}]", rate)
        if isinstance(self.scripted, list):  # tolerate list literals
            object.__setattr__(self, "scripted", tuple(self.scripted))

    @property
    def injects_smp_faults(self) -> bool:
        """True iff any SMP-level fault can ever fire.

        A partition counts: isolation is enforced inside the injector
        (deterministic SMInfo drops), so the transport needs it attached.
        """
        return bool(
            self.smp_drop_rate
            or self.smp_corrupt_rate
            or self.smp_delay_rate
            or self.per_target_drop
            or self.scripted
            or self.partition_step is not None
        )

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0, **extra) -> "FaultPlan":
        """Parse ``smp-drop=0.1,smp-corrupt=0.01,sm-death=5`` into a plan."""
        kwargs: Dict[str, object] = dict(extra)
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultInjectionError(
                    f"bad --inject item {item!r} (expected key=value)"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            if key in _INT_SPEC_KEYS:
                try:
                    kwargs[_INT_SPEC_KEYS[key]] = int(value)
                except ValueError:
                    raise FaultInjectionError(
                        f"--inject {key} needs an integer, got {value!r}"
                    ) from None
                continue
            if key not in _SPEC_KEYS:
                raise FaultInjectionError(
                    f"unknown --inject key {key!r};"
                    f" choose {sorted(_SPEC_KEYS)} or"
                    f" {sorted(_INT_SPEC_KEYS)}"
                )
            try:
                kwargs[_SPEC_KEYS[key]] = float(value)
            except ValueError:
                raise FaultInjectionError(
                    f"--inject {key} needs a number, got {value!r}"
                ) from None
        return cls(seed=seed, **kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """One-line human summary (used by the chaos CLI banner)."""
        parts: List[str] = [f"seed={self.seed}"]
        for attr, label in (
            ("smp_drop_rate", "drop"),
            ("smp_corrupt_rate", "corrupt"),
            ("smp_delay_rate", "delay"),
            ("link_flap_rate", "link-flap"),
            ("switch_failure_rate", "switch-fail"),
        ):
            value = getattr(self, attr)
            if value:
                parts.append(f"{label}={value}")
        if self.per_target_drop:
            parts.append(f"targeted={len(self.per_target_drop)}")
        if self.scripted:
            parts.append(f"scripted={len(self.scripted)}")
        if self.sm_death_step is not None:
            parts.append(f"sm-death@{self.sm_death_step}")
        if self.partition_step is not None:
            parts.append(
                f"partition@{self.partition_step}"
                f"+{self.partition_heal_steps}"
            )
        if self.link_flap_storm_step is not None:
            parts.append(
                f"flap-storm@{self.link_flap_storm_step}"
                f"x{self.link_flap_storm_size}"
            )
        if self.rewire_ops:
            parts.append(f"rewire={self.rewire_ops}")
        if self.service_kill_step is not None:
            parts.append(f"kill-service@{self.service_kill_step}")
        if self.tenant_storm_step is not None:
            parts.append(
                f"tenant-storm@{self.tenant_storm_step}"
                f"x{self.tenant_storm_factor}"
            )
        return " ".join(parts)
