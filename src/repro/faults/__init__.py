"""Deterministic fault injection for the control plane.

The paper's cost model (section VI, equations (1)-(5)) is derived on a
perfect control plane; real MAD datagrams are unacknowledged UD packets
that get dropped, reordered and corrupted, and real OpenSM retransmits on
timeout. This package supplies the failure model:

* :class:`~repro.faults.plan.FaultPlan` — a declarative, seeded
  description of what should go wrong (SMP drop/corrupt/delay
  probabilities, per-target overrides, scripted faults such as "drop the
  3rd LFT-block SMP of switch 7", link flaps, switch failures, SM death);
* :class:`~repro.faults.injector.FaultInjector` — the runtime that turns
  a plan into per-SMP decisions, attached to an
  :class:`~repro.mad.transport.SmpTransport`.

Everything is driven by explicitly seeded RNGs, so a fault plan replays
bit-identically (the deterministic-replay property the test suite and the
``repro chaos`` CLI rely on). With no injector attached the transport's
fast path is untouched — fault injection is strictly opt-in and zero-cost
when disabled.
"""

from repro.faults.injector import FaultAction, FaultDecision, FaultInjector
from repro.faults.plan import FaultPlan, ScriptedFault

__all__ = [
    "FaultAction",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "ScriptedFault",
]
