"""The fault injector: turning a :class:`~repro.faults.plan.FaultPlan`
into per-SMP decisions.

The injector sits inside :meth:`repro.mad.transport.SmpTransport.send`:
for every SMP about to be delivered it returns a :class:`FaultDecision` —
deliver, drop (the sender observes a timeout), corrupt (the payload is
damaged in flight and *applied damaged*, the silent failure a GetResp
read-back is needed to catch), or delay (delivered late).

Two independent seeded RNG streams are derived from the plan seed:

* ``rng`` — consumed once per SMP-level decision, so the decision
  sequence depends only on the sequence of sends;
* ``fabric_rng`` — handed to the chaos runner for link-flap/switch-kill
  scheduling, so fabric events never shift the SMP fault sequence.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, ScriptedFault
from repro.mad.smp import Smp, SmpKind

__all__ = ["FaultAction", "FaultDecision", "FaultInjector"]


class FaultAction(enum.Enum):
    """What the injector does to one SMP."""

    DELIVER = "deliver"
    DROP = "drop"
    CORRUPT = "corrupt"
    DELAY = "delay"


@dataclass(frozen=True)
class FaultDecision:
    """One per-SMP verdict (plus the extra latency for delays)."""

    action: FaultAction
    delay_seconds: float = 0.0
    #: The scripted rule that fired, if any (for logging/tests).
    scripted: Optional[ScriptedFault] = None


_DELIVER = FaultDecision(FaultAction.DELIVER)


class FaultInjector:
    """Runtime state of one fault plan, attachable to an SmpTransport."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: SMP-level decision stream (one draw per probabilistic check).
        self.rng = random.Random(plan.seed)
        #: Independent stream for fabric-level events (chaos runner).
        self.fabric_rng = random.Random((plan.seed << 1) ^ 0x5EED)
        #: Decisions taken, by action name.
        self.counts: Counter = Counter()
        #: Per-rule (matches seen, fires done) bookkeeping.
        self._rule_state: List[Tuple[int, int]] = [
            (0, 0) for _ in plan.scripted
        ]
        #: Nodes currently cut off from the *management plane*: SMInfo
        #: SMPs addressed to them are dropped deterministically (no RNG
        #: draw — healing a partition must not shift the fault sequence).
        #: Their port firmware still answers everything else; the model is
        #: an unreachable SM process, not a severed cable.
        self._isolated: frozenset = frozenset()

    # -- partitions ----------------------------------------------------------

    def isolate(self, names) -> None:
        """Partition *names* off the management plane (SMInfo blackhole)."""
        self._isolated = frozenset(names)

    def heal(self) -> None:
        """End the partition: SMInfo traffic flows again."""
        self._isolated = frozenset()

    @property
    def isolated(self) -> frozenset:
        """Names currently partitioned off the management plane."""
        return self._isolated

    # -- per-SMP decisions ---------------------------------------------------

    def decide(self, smp: Smp, *, now: float = 0.0) -> FaultDecision:
        """The verdict for one SMP about to be sent at sim time *now*."""
        decision = self._decide(smp, now)
        self.counts[decision.action.value] += 1
        return decision

    def _decide(self, smp: Smp, now: float) -> FaultDecision:
        if (
            self._isolated
            and smp.kind is SmpKind.SM_INFO
            and smp.target in self._isolated
        ):
            return FaultDecision(FaultAction.DROP)
        scripted = self._match_scripted(smp, now)
        if scripted is not None:
            return scripted
        target_rate = self.plan.per_target_drop.get(smp.target)
        if target_rate is not None and self.rng.random() < target_rate:
            return FaultDecision(FaultAction.DROP)
        if (
            self.plan.smp_drop_rate
            and self.rng.random() < self.plan.smp_drop_rate
        ):
            return FaultDecision(FaultAction.DROP)
        if (
            self.plan.smp_corrupt_rate
            and self.rng.random() < self.plan.smp_corrupt_rate
        ):
            # Corruption is only meaningful where a damaged payload can be
            # silently applied (SET LFT blocks); elsewhere the damaged MAD
            # fails its CRC and is discarded — a drop.
            if smp.is_lft_update:
                return FaultDecision(FaultAction.CORRUPT)
            return FaultDecision(FaultAction.DROP)
        if (
            self.plan.smp_delay_rate
            and self.rng.random() < self.plan.smp_delay_rate
        ):
            return FaultDecision(
                FaultAction.DELAY,
                delay_seconds=self.plan.smp_delay_seconds,
            )
        return _DELIVER

    def _match_scripted(
        self, smp: Smp, now: float
    ) -> Optional[FaultDecision]:
        kind = smp.kind.name.lower()
        for i, rule in enumerate(self.plan.scripted):
            if rule.target is not None and rule.target != smp.target:
                continue
            if rule.kind is not None and rule.kind != kind:
                continue
            matches, fired = self._rule_state[i]
            if rule.at_time is not None:
                if now < rule.at_time or fired >= rule.count:
                    continue
                self._rule_state[i] = (matches, fired + 1)
            else:
                matches += 1
                self._rule_state[i] = (matches, fired)
                if matches < rule.nth or fired >= rule.count:
                    continue
                self._rule_state[i] = (matches, fired + 1)
            if rule.action == "corrupt" and not smp.is_lft_update:
                return FaultDecision(FaultAction.DROP, scripted=rule)
            action = FaultAction(rule.action)
            return FaultDecision(
                action,
                delay_seconds=rule.delay_seconds,
                scripted=rule,
            )
        return None

    # -- payload corruption ---------------------------------------------------

    def corrupt_entries(self, entries: np.ndarray) -> np.ndarray:
        """Damage one LFT-block payload in flight.

        Flips a single entry to a pseudo-random port — the bit-rot a
        GetResp read-back (transactional distribution) exists to catch.
        """
        damaged = np.array(entries, dtype=np.int16, copy=True)
        slot = self.rng.randrange(len(damaged))
        damaged[slot] = self.rng.randrange(1, 255)
        return damaged

    # -- introspection ---------------------------------------------------------

    @property
    def injected_total(self) -> int:
        """Non-DELIVER decisions taken so far."""
        return sum(
            count
            for action, count in self.counts.items()
            if action != FaultAction.DELIVER.value
        )

    def summary(self) -> Dict[str, int]:
        """Decision counts by action (stable key order)."""
        return {
            action.value: self.counts.get(action.value, 0)
            for action in FaultAction
        }
