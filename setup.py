import setuptools; setuptools.setup()
