"""Benchmark E7 — sections V-A vs V-B: the two LID schemes head to head.

Measures what the paper discusses qualitatively: initial path-computation
and distribution cost (prepopulation routes every VF LID at boot), per-VM-
boot cost (dynamic pays one SMP per switch), and the LID budget each
scheme consumes.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager

NUM_VFS = 8


def bring_up(lid_scheme: str):
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=lid_scheme, num_vfs=NUM_VFS
    )
    cloud.adopt_all_hcas()
    report = cloud.bring_up_subnet()
    return cloud, report


@pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
def test_subnet_bring_up(benchmark, scheme):
    """Initial configuration cost per scheme."""
    cloud, report = benchmark.pedantic(
        lambda: bring_up(scheme), rounds=2, iterations=1
    )
    topo = cloud.topology
    base_lids = topo.num_switches + topo.num_hcas
    if scheme == "prepopulated":
        assert cloud.sm.lids_consumed == base_lids + NUM_VFS * topo.num_hcas
    else:
        assert cloud.sm.lids_consumed == base_lids


def test_bring_up_comparison(benchmark):
    """Prepopulation pays more PCt and more LFT SMPs at boot (section V-A/B)."""
    prep_cloud, prep = benchmark.pedantic(
        lambda: bring_up("prepopulated"), rounds=1, iterations=1
    )
    dyn_cloud, dyn = bring_up("dynamic")
    assert prep_cloud.sm.lids_consumed > dyn_cloud.sm.lids_consumed
    assert prep.lft_smps >= dyn.lft_smps
    assert prep.path_compute_seconds > dyn.path_compute_seconds
    print("\n=== Subnet bring-up: prepopulated vs dynamic ===")
    print(
        render_table(
            ["scheme", "LIDs", "PCt (s)", "LFT SMPs"],
            [
                (
                    "prepopulated",
                    prep_cloud.sm.lids_consumed,
                    f"{prep.path_compute_seconds:.4f}",
                    prep.lft_smps,
                ),
                (
                    "dynamic",
                    dyn_cloud.sm.lids_consumed,
                    f"{dyn.path_compute_seconds:.4f}",
                    dyn.lft_smps,
                ),
            ],
        )
    )


@pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
def test_vm_boot_cost(benchmark, scheme):
    """Per-boot SMPs: zero under prepopulation, <= n under dynamic.

    Boots alternate between two far-apart hypervisors so the dynamic
    scheme's recycled LID genuinely changes paths each time.
    """
    cloud, _ = bring_up(scheme)
    names = list(cloud.hypervisors)
    hosts = [names[0], names[-1]]
    state = {"vm": None, "i": 0}

    def cycle():
        if state["vm"] is not None:
            cloud.stop_vm(state["vm"].name)
        before = cloud.sm.transport.stats.lft_update_smps
        state["vm"] = cloud.boot_vm(on=hosts[state["i"] % 2])
        state["i"] += 1
        return cloud.sm.transport.stats.lft_update_smps - before

    smps = benchmark(cycle)
    if scheme == "prepopulated":
        assert smps == 0
    else:
        assert 0 < smps <= cloud.topology.num_switches


def test_dynamic_supports_vf_overcommit(benchmark):
    """Section V-B: VFs may exceed the LID budget under dynamic assignment."""
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="dynamic", num_vfs=64
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    # 36 hypervisors x 64 VFs = 2304 potential slots with only
    # 48 LIDs consumed; booting VMs draws LIDs lazily.
    assert cloud.total_capacity == 64 * 36
    vm = benchmark.pedantic(cloud.boot_vm, rounds=1, iterations=1)
    assert vm.lid is not None
