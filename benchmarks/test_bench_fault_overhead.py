"""Benchmark E8 — control-plane overhead under SMP loss.

Runs the same deterministic migration batch on the paper-324 structural
twin (``2l-small``) at drop rates 0, 0.01 and 0.1 with MAD retries
enabled, and measures what the loss costs: extra SMPs over the lossless
n'·m', retry backoff added to VM downtime, and wall-clock overhead of
the resilient send path. The headline assertion is the robustness
contract: at every drop rate the final forwarding state is byte-identical
to the fault-free run.

Results are written to ``BENCH_fault_overhead.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import RetryPolicy
from repro.virt.cloud import CloudManager

DROP_RATES = (0.0, 0.01, 0.1)
NUM_VMS = 8
NUM_MIGRATIONS = 8

#: {label: {metric: value}} accumulated across the module.
RESULTS = {}

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_fault_overhead.json",
)


def build_cloud():
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    cloud.sm.enable_resilience(RetryPolicy(retries=16))
    for _ in range(NUM_VMS):
        cloud.boot_vm()
    return cloud


def lft_snapshot(cloud):
    return {
        sw.name: np.array(sw.lft.as_array(), copy=True)
        for sw in cloud.topology.switches
    }


def run_at_drop_rate(drop):
    cloud = build_cloud()
    if drop:
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=17, smp_drop_rate=drop))
        )
    stats = cloud.sm.transport.stats
    before = stats.snapshot()
    downtime = 0.0
    t0 = time.perf_counter()
    outcomes = []
    for i in range(NUM_MIGRATIONS):
        vm = cloud.vms[f"vm{i % NUM_VMS + 1}"]
        dest = next(
            name
            for name in sorted(cloud.hypervisors, reverse=True)
            if name != vm.hypervisor_name
            and cloud.hypervisors[name].has_capacity()
        )
        report = cloud.live_migrate(vm.name, dest)
        outcomes.append(report.outcome)
        downtime += report.downtime_seconds
    wall = time.perf_counter() - t0
    delta = stats.delta_since(before)
    cloud.sm.transport.set_fault_injector(None)
    return {
        "cloud": cloud,
        "outcomes": outcomes,
        "lft_smps": delta.lft_update_smps,
        "retries": delta.retransmissions,
        "timeouts": delta.timeouts,
        "retry_wait_s": delta.retry_wait_seconds,
        "downtime_s": downtime,
        "wall_s": wall,
        "lfts": lft_snapshot(cloud),
    }


def test_fault_overhead_sweep(benchmark):
    baseline = None
    for drop in DROP_RATES:
        run = run_at_drop_rate(drop)
        label = f"drop-{drop}"
        assert all(o == "completed" for o in run["outcomes"])
        if drop == 0.0:
            baseline = run
            assert run["retries"] == 0
            assert run["retry_wait_s"] == 0.0
        else:
            # Robustness contract: loss costs retries, never a different
            # forwarding state.
            assert set(run["lfts"]) == set(baseline["lfts"])
            assert all(
                np.array_equal(run["lfts"][k], baseline["lfts"][k])
                for k in run["lfts"]
            )
            assert run["lft_smps"] >= baseline["lft_smps"]
        RESULTS[label] = {
            "drop_rate": drop,
            "migrations": NUM_MIGRATIONS,
            "lft_smps": run["lft_smps"],
            "smp_overhead_ratio": (
                run["lft_smps"] / baseline["lft_smps"]
                if baseline["lft_smps"]
                else 1.0
            ),
            "retries": run["retries"],
            "timeouts": run["timeouts"],
            "retry_wait_s": run["retry_wait_s"],
            "downtime_s": run["downtime_s"],
            "downtime_inflation": (
                run["retry_wait_s"] / run["downtime_s"]
                if run["downtime_s"]
                else 0.0
            ),
            "wall_s": run["wall_s"],
        }
    # Stable pytest-benchmark statistics on the lossless configuration.
    benchmark.pedantic(
        lambda: run_at_drop_rate(0.0), rounds=1, iterations=1
    )


def test_write_results(benchmark):
    """Persist the measurements (runs last: files sort after the others)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no measurements collected")
    with open(_OUT_PATH, "w") as fh:
        json.dump(RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {_OUT_PATH}")
    for label, entry in RESULTS.items():
        print(
            f"  {label}: {entry['lft_smps']} LFT SMPs"
            f" ({entry['smp_overhead_ratio']:.2f}x),"
            f" {entry['retries']} retries,"
            f" retry wait {entry['retry_wait_s'] * 1e3:.2f}ms"
            f" ({entry['downtime_inflation']:.1%} of downtime)"
        )
