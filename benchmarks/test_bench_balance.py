"""Benchmark E7b — traffic balance under many migrations (sections V-A/V-C1).

The paper claims the swap-based reconfiguration "keeps the balancing of the
initial routing" while the dynamic scheme "compromises on the traffic
balancing". Measured here: the max/mean link-load imbalance of an
all-to-all workload over every VF LID, before and after a burst of random
migrations, under both schemes.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fabric.presets import scaled_fattree
from repro.sm.routing.base import RoutingRequest
from repro.virt.cloud import CloudManager
from repro.workloads.migration_patterns import ANY, MigrationPlanner
from repro.workloads.traffic import all_to_all_flows, link_loads

MIGRATIONS = 12


def imbalance_after_migrations(scheme: str, *, over: str):
    """Max/mean link imbalance before/after a migration burst.

    ``over`` selects the measured LID population: ``"all-vfs"`` (the full
    prepopulated path multiset — what the swap preserves *exactly*) or
    ``"vms"`` (the live VMs' traffic — what the copy scheme skews).
    """
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=3
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    for _ in range(30):
        cloud.boot_vm()

    def measured_lids():
        if over == "all-vfs":
            return [
                vf.lid
                for vsw in cloud.scheme.vswitches
                for vf in vsw.vfs
                if vf.lid is not None
            ]
        return [vm.lid for vm in cloud.vms.values()]

    def imbalance():
        req = RoutingRequest.from_topology(cloud.topology)
        return link_loads(
            cloud.sm.current_tables, req, all_to_all_flows(measured_lids())
        ).imbalance

    before = imbalance()
    planner = MigrationPlanner(cloud, built, seed=3)
    done = 0
    while done < MIGRATIONS:
        plan = planner.plan_one(ANY)
        if plan is None:
            break
        cloud.live_migrate(*plan)
        done += 1
    return before, imbalance(), done


def test_swap_preserves_balance(benchmark):
    """Prepopulated/swap: the load distribution is migration-invariant."""
    before, after, done = benchmark.pedantic(
        lambda: imbalance_after_migrations("prepopulated", over="all-vfs"),
        rounds=1,
        iterations=1,
    )
    assert done == MIGRATIONS
    # Swapping permutes which VM uses which path; the multiset of paths —
    # and hence the load histogram — is exactly preserved.
    assert after == pytest.approx(before, rel=1e-9)


def test_copy_degrades_balance(benchmark):
    """Dynamic/copy: VM LIDs pile onto PF paths as they move."""
    before, after, done = benchmark.pedantic(
        lambda: imbalance_after_migrations("dynamic", over="vms"),
        rounds=1,
        iterations=1,
    )
    assert done == MIGRATIONS
    assert after >= before
    print("\n=== all-to-all max/mean link imbalance ===")
    print(
        render_table(
            ["scheme", "before", "after 12 migrations"],
            [
                ("prepopulated (swap)", "b", "b (exactly preserved)"),
                ("dynamic (copy)", f"{before:.3f}", f"{after:.3f}"),
            ],
        )
    )
