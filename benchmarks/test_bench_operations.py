"""Benchmark — operational events vs migrations.

Puts the paper's central comparison in operational context: what the SM
pays for the events that *legitimately* need reconfiguration (cable and
switch failures, SM handover) versus the near-free vSwitch migration.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sm.handover import SmRedundancyManager
from repro.sm.subnet_manager import SubnetManager
from repro.virt.cloud import CloudManager


def fresh_sm():
    built = scaled_fattree("2l-wide")
    sm = SubnetManager(
        built.topology, built=built, engine="minhop", fallback_engine="minhop"
    )
    sm.initial_configure(with_discovery=False)
    return built, sm


def test_handover_state_sharing(benchmark):
    """Standby takeover with shared state: discovery only."""
    built, sm = fresh_sm()
    mgr = SmRedundancyManager(sm)
    for i, hca in enumerate(built.topology.hcas[:3]):
        mgr.register(hca.name, guid=i + 1, priority=1)
    mgr.elect()

    def takeover():
        mgr.kill_master()
        report = mgr.handover(resweep=False)
        # Revive everyone for the next round.
        for cand in mgr.candidates():
            cand.alive = True
        return report

    report = benchmark(takeover)
    assert report.path_compute_seconds == 0.0
    assert report.lft_smps == 0


def test_handover_resweep(benchmark):
    """Naive restart-style takeover: pays PCt, distributes nothing new."""
    built, sm = fresh_sm()
    mgr = SmRedundancyManager(sm)
    for i, hca in enumerate(built.topology.hcas[:3]):
        mgr.register(hca.name, guid=i + 1, priority=1)
    mgr.elect()

    def takeover():
        mgr.kill_master()
        report = mgr.handover(resweep=True)
        for cand in mgr.candidates():
            cand.alive = True
        return report

    report = benchmark.pedantic(takeover, rounds=3, iterations=1)
    assert report.path_compute_seconds > 0
    assert report.lft_smps == 0


def test_link_failure_reroute(benchmark):
    """Cable failure: the genuinely necessary recompute + diff."""
    built, sm = fresh_sm()
    topo = built.topology
    links = [
        l
        for l in topo.links
        if isinstance(l.a.node, Switch) and isinstance(l.b.node, Switch)
    ]
    state = {"i": 0}

    def fail_and_repair():
        link = links[state["i"] % len(links)]
        state["i"] += 1
        spec = (link.a.node, link.a.num, link.b.node, link.b.num)
        report = sm.handle_link_failure(link)
        # Repair for the next round.
        topo.connect(*spec)
        topo.invalidate_fabric_view()
        sm.transport.invalidate_distances()
        sm.compute_routing()
        sm.distribute()
        return report

    report = benchmark.pedantic(fail_and_repair, rounds=3, iterations=1)
    assert report.path_compute_seconds > 0
    assert report.lft_smps > 0


def test_operations_cost_comparison(benchmark):
    """The summary table: failures pay PCt, migrations never do."""
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    vm = cloud.boot_vm(on="l0h0")
    mig = benchmark.pedantic(
        lambda: cloud.live_migrate(
            vm.name, "l11h5" if vm.hypervisor_name != "l11h5" else "l0h0"
        ),
        rounds=2,
        iterations=1,
    )
    topo = cloud.topology
    link = next(
        l
        for l in topo.links
        if isinstance(l.a.node, Switch) and isinstance(l.b.node, Switch)
    )
    fail = cloud.sm.handle_link_failure(link)
    rows = [
        (
            "VM live migration",
            "0",
            mig.reconfig.lft_smps,
            f"{mig.reconfig.total_seconds_serial * 1e6:.1f}us",
        ),
        (
            "cable failure reroute",
            f"{fail.path_compute_seconds * 1e3:.1f}ms",
            fail.lft_smps,
            f"{fail.total_seconds_serial * 1e3:.1f}ms",
        ),
    ]
    print("\n=== operational reconfiguration costs ===")
    print(render_table(["event", "PCt", "LFT SMPs", "total"], rows))
    assert mig.reconfig.path_compute_seconds == 0.0
    assert fail.path_compute_seconds > 0
