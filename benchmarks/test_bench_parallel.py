"""Benchmark E6b — concurrent migrations (section VI-D, last paragraph).

Executes batched migrations with disjoint skylines and reports the
reconfiguration-makespan speedup over serial execution; with minimal
intra-leaf updates the concurrency equals the leaf count.
"""

from __future__ import annotations

import pytest

from repro.core.parallel import ParallelMigrationExecutor
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager


@pytest.fixture()
def fresh_cloud():
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    for leaf in range(12):
        cloud.boot_vm(on=f"l{leaf}h0")
    return cloud


def test_parallel_intra_leaf_campaign(benchmark, fresh_cloud):
    """One intra-leaf migration per leaf: single-switch skylines."""
    cloud = fresh_cloud
    cloud.orchestrator.minimal_intra_leaf = True
    execu = ParallelMigrationExecutor(cloud)
    state = {"flip": False}

    def campaign():
        a, b = ("h0", "h1") if not state["flip"] else ("h1", "h0")
        state["flip"] = not state["flip"]
        moves = []
        for leaf in range(12):
            vm = next(
                vm
                for vm in cloud.vms.values()
                if vm.hypervisor_name == f"l{leaf}{a}"
            )
            moves.append((vm.name, f"l{leaf}{b}"))
        return execu.execute(moves)

    report = benchmark.pedantic(campaign, rounds=2, iterations=1)
    assert report.total_migrations == 12
    for r in report.migrations:
        assert r.switches_updated == 1
    print(
        f"\nparallel campaign: {report.total_migrations} migrations in"
        f" {report.num_batches} rounds,"
        f" reconfig speedup {report.speedup:.1f}x,"
        f" {report.total_lft_smps} SMPs total"
    )


def test_parallel_vs_serial_makespan(benchmark, fresh_cloud):
    """Cross-fabric moves: batching never slows reconfiguration down."""
    cloud = fresh_cloud
    execu = ParallelMigrationExecutor(cloud)
    vms = [vm.name for vm in list(cloud.vms.values())[:6]]
    state = {"round": 0}

    def campaign():
        state["round"] += 1
        offset = 2 + (state["round"] % 3)
        moves = []
        for i, name in enumerate(vms):
            src_leaf = int(cloud.vms[name].hypervisor_name[1:].split("h")[0])
            dest = f"l{(src_leaf + offset) % 12}h{2 + (i % 2)}"
            moves.append((name, dest))
        return execu.execute(moves)

    report = benchmark.pedantic(campaign, rounds=2, iterations=1)
    assert report.total_migrations == 6
    assert report.concurrent_reconfig_seconds <= report.serial_reconfig_seconds
    assert report.speedup >= 1.0
