"""Benchmark — live topology mutation: incremental repair vs full sweep.

For each fabric scale (``2l-small`` = paper-324 twin, ``2l-wide`` =
648-host twin) the same runtime mutations are driven twice:

* **incremental** — ``SubnetManager.handle_topology_change``: the
  routing cache replays the mutation's repair events, resweeping only
  the affected BFS source trees, and the distributor sends only the
  changed LFT blocks;
* **full** — the traditional baseline: the distance cache is dropped,
  every source recomputed and every block resent
  (``full_reconfigure``), exactly what a pre-mechanism SM would pay.

The headline numbers are the repaired-source count (must be a strict
subset of the fabric) and the SMP/wall cost ratio. Results are written
to ``BENCH_rewire.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.fabric.presets import scaled_fattree
from repro.fabric.topology import TopologyMutation
from repro.sm.subnet_manager import SubnetManager

SCALES = ("2l-small", "2l-wide")

#: {label: {metric: value}} accumulated across the module.
RESULTS = {}

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_rewire.json",
)


def build_sm(scale):
    built = scaled_fattree(scale)
    sm = SubnetManager(built.topology, engine="minhop", built=built)
    sm.initial_configure(with_discovery=False)
    return built, sm


def plan_mutations(built):
    """Deterministic mutation sequence viable at every scale.

    A leaf-spine cable is pulled and then re-plugged (the flap pair
    exercises both the removal- and the addition-side repair
    predicates); where spines still have free ports (2l-small) a
    spine-spine shortcut is added first.
    """
    mutations = []
    spines = [
        sw for sw in built.roots if next(sw.free_ports(), None) is not None
    ]
    if len(spines) >= 2:
        a, b = spines[0], spines[1]
        mutations.append(
            TopologyMutation(
                kind="add_link",
                a=a.name,
                port_a=next(a.free_ports()).num,
                b=b.name,
                port_b=next(b.free_ports()).num,
            )
        )
    leaf = next(sw for sw in built.topology.switches if sw.attached_hcas())
    uplink = next(
        p for p in leaf.connected_ports() if p.remote.node in built.roots
    )
    flap = dict(
        a=leaf.name,
        port_a=uplink.num,
        b=uplink.remote.node.name,
        port_b=uplink.remote.num,
    )
    mutations.append(TopologyMutation(kind="remove_link", **flap))
    mutations.append(TopologyMutation(kind="restore_link", **flap))
    return mutations


def run_incremental(scale):
    built, sm = build_sm(scale)
    stats = sm.transport.stats
    out = []
    for mutation in plan_mutations(built):
        before = stats.snapshot()
        t0 = time.perf_counter()
        report = sm.handle_topology_change(mutation, verify=False)
        wall = time.perf_counter() - t0
        delta = stats.delta_since(before)
        out.append(
            {
                "kind": mutation.kind,
                "repair_mode": report.repair_mode,
                "sources_repaired": report.sources_repaired,
                "lft_smps": delta.lft_update_smps,
                "wall_s": wall,
            }
        )
    return sm, out


def run_full(scale):
    """The same mutations through the traditional full-sweep baseline."""
    built, sm = build_sm(scale)
    stats = sm.transport.stats
    out = []
    for mutation in plan_mutations(built):
        sm.apply_topology_mutation(mutation)
        sm.transport.invalidate_distances()
        # Drop the warm distance cache: the baseline SM has no repair
        # machinery, every mutation costs a cold all-pairs recompute.
        sm.routing_state._invalidate()
        before = stats.snapshot()
        t0 = time.perf_counter()
        sm.full_reconfigure()
        wall = time.perf_counter() - t0
        delta = stats.delta_since(before)
        out.append(
            {
                "kind": mutation.kind,
                "lft_smps": delta.lft_update_smps,
                "wall_s": wall,
            }
        )
    return sm, out


def test_rewire_incremental_vs_full(benchmark):
    for scale in SCALES:
        sm_inc, incremental = run_incremental(scale)
        sm_full, full = run_full(scale)
        n = sm_inc.topology.num_switches
        # Both arms converge on byte-identical forwarding state.
        assert (
            sm_inc.current_tables.ports.tobytes()
            == sm_full.current_tables.ports.tobytes()
        )
        for inc_entry, full_entry in zip(incremental, full):
            assert inc_entry["kind"] == full_entry["kind"]
            # The acceptance gate: repair touches a strict subset of
            # the fabric's sources, and never costs more SMPs than the
            # full sweep.
            assert inc_entry["repair_mode"] == "incremental"
            assert 0 < inc_entry["sources_repaired"] < n
            assert inc_entry["lft_smps"] <= full_entry["lft_smps"]
            RESULTS[f"{scale}/{inc_entry['kind']}"] = {
                "scale": scale,
                "num_switches": n,
                "kind": inc_entry["kind"],
                "repair_mode": inc_entry["repair_mode"],
                "sources_repaired": inc_entry["sources_repaired"],
                "incremental_lft_smps": inc_entry["lft_smps"],
                "full_lft_smps": full_entry["lft_smps"],
                "smp_ratio": (
                    inc_entry["lft_smps"] / full_entry["lft_smps"]
                    if full_entry["lft_smps"]
                    else 0.0
                ),
                "incremental_wall_s": inc_entry["wall_s"],
                "full_wall_s": full_entry["wall_s"],
            }
    benchmark.pedantic(
        lambda: run_incremental("2l-small"), rounds=1, iterations=1
    )


def test_write_results(benchmark):
    """Persist the measurements (runs last: files sort after the others)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no measurements collected")
    with open(_OUT_PATH, "w") as fh:
        json.dump(RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {_OUT_PATH}")
    for label, entry in RESULTS.items():
        print(
            f"  {label}: {entry['sources_repaired']}/{entry['num_switches']}"
            f" sources repaired,"
            f" {entry['incremental_lft_smps']} vs"
            f" {entry['full_lft_smps']} LFT SMPs"
            f" ({entry['smp_ratio']:.2f}x),"
            f" wall {entry['incremental_wall_s'] * 1e3:.2f}ms vs"
            f" {entry['full_wall_s'] * 1e3:.2f}ms"
        )
