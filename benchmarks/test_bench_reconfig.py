"""Benchmark E3 — per-migration reconfiguration cost: swap vs copy vs full.

Times the actual reconfiguration primitives of Algorithm 1 against the
traditional full-reconfiguration baseline on the same subnet, and records
the SMP counts the paper argues about (one to a few vs hundreds).
"""

from __future__ import annotations

import pytest

from repro.core.cost_model import table1_row
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager


def build_cloud(lid_scheme: str) -> CloudManager:
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=lid_scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    return cloud


@pytest.fixture(scope="module")
def prep_cloud():
    return build_cloud("prepopulated")


@pytest.fixture(scope="module")
def dyn_cloud():
    return build_cloud("dynamic")


def test_migration_swap_prepopulated(benchmark, prep_cloud):
    """Full live migration under the prepopulated scheme (LID swapping)."""
    cloud = prep_cloud
    vm = cloud.boot_vm(on="l0h0")
    spots = ["l11h5", "l0h0"]
    state = {"i": 0}

    def migrate():
        dest = spots[state["i"] % 2]
        state["i"] += 1
        return cloud.live_migrate(vm.name, dest)

    report = benchmark(migrate)
    n = cloud.topology.num_switches
    assert 1 <= report.reconfig.lft_smps <= 2 * n
    assert report.reconfig.path_compute_seconds == 0.0


def test_migration_copy_dynamic(benchmark, dyn_cloud):
    """Full live migration under the dynamic scheme (LID copying)."""
    cloud = dyn_cloud
    vm = cloud.boot_vm(on="l0h0")
    spots = ["l11h5", "l0h0"]
    state = {"i": 0}

    def migrate():
        dest = spots[state["i"] % 2]
        state["i"] += 1
        return cloud.live_migrate(vm.name, dest)

    report = benchmark(migrate)
    n = cloud.topology.num_switches
    # Copying touches at most one block per switch — never more than n.
    assert 1 <= report.reconfig.lft_smps <= n


def test_traditional_baseline_per_change(benchmark, prep_cloud):
    """What the same change would cost with a full reconfiguration."""
    cloud = prep_cloud

    def full_rc():
        return cloud.sm.full_reconfigure()

    report = benchmark.pedantic(full_rc, rounds=2, iterations=1)
    topo = cloud.topology
    vf_lids = 4 * topo.num_hcas
    row = table1_row(topo.num_hcas, topo.num_switches, extra_lids=vf_lids)
    assert report.lft_smps == row.min_smps_full_reconfig
    assert report.path_compute_seconds > 0


def test_smp_reduction_vs_baseline(benchmark, prep_cloud):
    """The headline claim: orders-of-magnitude fewer SMPs per migration."""
    cloud = prep_cloud
    vm = cloud.boot_vm(on="l1h0")
    mig = benchmark.pedantic(
        lambda: cloud.live_migrate(vm.name, "l10h3"), rounds=1, iterations=1
    )
    full = cloud.sm.full_reconfigure()
    reduction = 1 - mig.reconfig.lft_smps / full.lft_smps
    assert reduction > 0.5
    print(
        f"\nmigration SMPs={mig.reconfig.lft_smps}"
        f" full-RC SMPs={full.lft_smps} reduction={reduction:.1%}"
    )


def test_vm_boot_cost_dynamic(benchmark, dyn_cloud):
    """Section V-B runtime overhead: one SMP per switch per VM boot.

    Boots alternate between two hypervisors on different leaves so the
    recycled LID always needs real LFT edits (rebooting on the same node
    would find the stale entries already correct).
    """
    cloud = dyn_cloud
    hosts = ["l2h2", "l9h1"]
    state = {"vm": None, "i": 0}

    def boot_stop():
        if state["vm"] is not None:
            cloud.stop_vm(state["vm"].name)
        state["vm"] = cloud.boot_vm(on=hosts[state["i"] % 2])
        state["i"] += 1
        return state["vm"]

    benchmark(boot_stop)
    n = cloud.topology.num_switches
    before = cloud.sm.transport.stats.lft_update_smps
    boot_stop()
    boot_smps = cloud.sm.transport.stats.lft_update_smps - before
    assert 0 < boot_smps <= n
