"""Benchmark E9 — control-plane service under 1x/10x/100x offered load.

Drives :class:`~repro.service.service.ControlPlaneService` over the
paper-324 structural twin (``2l-small``, dynamic LID scheme) with three
offered-load multipliers and measures the two degradation levers the
service PR adds:

* **coalescing** — N requests admitted per sweep window collapse into
  far fewer SM sweeps (requests/sweep > 1), and batched boots share LFT
  block writes (ideal serial SMPs / actual SMPs >= 1);
* **shedding** — past the queue bound the service rejects with a
  deterministic retry-after hint. The no-silent-drop ledger must balance
  at every load: every submission ends terminal or rejected, never lost.

Results are written to ``BENCH_service.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.fabric.presets import scaled_fattree
from repro.obs import reset_hub
from repro.service import ControlPlaneService, TenantQuota
from repro.virt.cloud import CloudManager

#: Offered-load multipliers: submissions per round = LOAD x BASE_RATE.
LOADS = (1, 10, 100)
BASE_RATE = 2
ROUNDS = 10
TENANTS = ("t1", "t2", "t3")

#: {label: {metric: value}} accumulated across the module.
RESULTS = {}

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)


def build_service():
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="dynamic", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    service = ControlPlaneService(
        cloud,
        batch_size=8,
        max_queue_depth=64,
        default_quota=TenantQuota(max_vms=10_000, max_vfs=10_000),
    )
    return cloud, service


def run_at_load(load):
    reset_hub()
    cloud, service = build_service()
    accepted = []
    rejected = 0
    missing_retry_after = 0
    t0 = time.perf_counter()
    serial = 0
    for _ in range(ROUNDS):
        for i in range(load * BASE_RATE):
            tenant = TENANTS[i % len(TENANTS)]
            serial += 1
            response = service.submit(
                tenant, "boot", request_id=f"{tenant}/bench/{serial}"
            )
            if response.status == "accepted":
                accepted.append(response.request_id)
            else:
                rejected += 1
                if response.retry_after_s is None:
                    missing_retry_after += 1
        service.pump()
    service.drain()
    wall_s = time.perf_counter() - t0
    unanswered = [
        rid for rid in accepted if service.response_for(rid) is None
    ]
    stats = service.stats
    return {
        "offered": stats.submitted,
        "completed": stats.completed,
        "failed": stats.failed,
        "rejected_quota": stats.rejected_quota,
        "rejected_overload": stats.rejected_overload,
        "timed_out": stats.timed_out,
        "sweeps": stats.sweeps,
        "applied": stats.applied_requests,
        "coalescing_ratio": round(stats.coalescing_ratio, 3),
        "smp_coalescing_ratio": round(stats.smp_coalescing_ratio, 3),
        "shed_rate": round(stats.shed_rate, 4),
        "peak_queue_depth": stats.peak_queue_depth,
        "rejected": rejected,
        "missing_retry_after": missing_retry_after,
        "unanswered": len(unanswered),
        "pending_accounted": service.pending_accounted(),
        "wall_s": round(wall_s, 4),
    }


@pytest.mark.parametrize("load", LOADS)
def test_service_under_load(benchmark, load):
    entry = benchmark.pedantic(run_at_load, args=(load,), rounds=1, iterations=1)
    RESULTS[f"load-{load}x"] = entry

    # no silent drops at any load: ledger balances, every accepted
    # request got a terminal answer, every rejection carried retry-after
    assert entry["unanswered"] == 0
    assert entry["pending_accounted"] == 0
    assert entry["missing_retry_after"] == 0
    # the queue stayed bounded
    assert entry["peak_queue_depth"] <= 64
    # batching pays off as soon as the queue has depth
    if load > 1:
        assert entry["coalescing_ratio"] > 1.0
        assert entry["smp_coalescing_ratio"] >= 1.0
    # past saturation the service sheds explicitly instead of queueing
    if load == 100:
        assert entry["rejected_overload"] > 0
        assert entry["shed_rate"] > 0.0
    if load == 1:
        assert entry["rejected_overload"] == 0


def test_write_results(benchmark):
    """Persist the measurements (runs last: files sort after the others)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no measurements collected")
    with open(_OUT_PATH, "w") as fh:
        json.dump(RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {_OUT_PATH}")
    for label, entry in RESULTS.items():
        print(
            f"  {label}: {entry['offered']} offered,"
            f" {entry['completed']} completed,"
            f" coalescing {entry['coalescing_ratio']:.2f}x,"
            f" shed {entry['shed_rate']:.1%},"
            f" {entry['unanswered']} unanswered"
        )
