"""Benchmark E0 — the motivation experiment (paper sections I/III/IV-A):
what a migration breaks under Shared Port vs the vSwitch architecture.

For a VM with P peer connections, one migration costs:

* Shared Port (ref [9]): P broken connections and >= P SA PathRecord
  round-trips to repair (reduced by the ref-[10] cache);
* Shared Port with the emulation's LID swap: additionally breaks every
  co-resident VM's connections;
* vSwitch (this paper): zero broken connections, zero repair queries.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager
from repro.virt.connections import ConnectionManager
from repro.virt.shared_port_fleet import SharedPortFleet

PEERS = 8


def shared_port_run(*, lid_swap: bool, use_cache: bool):
    built = scaled_fattree("2l-wide")
    fleet = SharedPortFleet(built.topology, num_vfs=4)
    fleet.adopt_all_hcas()
    vm = fleet.boot_vm(on="l0h0")
    bystander = fleet.boot_vm(on="l0h0")
    peers = [fleet.boot_vm(on=f"l{i}h{i % 6}") for i in range(1, PEERS + 1)]
    cm = ConnectionManager(fleet.sa, use_cache=use_cache)
    for p in peers:
        cm.connect(p.gid, vm.gid)
    cm.connect(peers[0].gid, bystander.gid)
    if lid_swap:
        fleet.migrate_vm_with_lid_swap(vm.name, "l11h5")
    else:
        fleet.migrate_vm(vm.name, "l11h5")
    broken = cm.audit().broken_count
    queries = cm.repair()
    return broken, queries


def vswitch_run():
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    vm = cloud.boot_vm(on="l0h0")
    bystander = cloud.boot_vm(on="l0h0")
    peers = [cloud.boot_vm(on=f"l{i}h{i % 6}") for i in range(1, PEERS + 1)]
    cm = ConnectionManager(cloud.sa)
    for p in peers:
        cm.connect(p.gid, vm.gid)
    cm.connect(peers[0].gid, bystander.gid)
    cloud.live_migrate(vm.name, "l11h5")
    broken = cm.audit().broken_count
    queries = cm.repair()
    return broken, queries


def test_shared_port_migration_damage(benchmark):
    """Reference-[9] migration: every peer breaks, SA storm to repair."""
    broken, queries = benchmark.pedantic(
        lambda: shared_port_run(lid_swap=False, use_cache=False),
        rounds=2,
        iterations=1,
    )
    assert broken == PEERS
    assert queries >= PEERS


def test_shared_port_lid_swap_collateral(benchmark):
    """The emulation's LID swap keeps the *migrating* VM's peers healthy
    (its LID value is preserved — the swap's purpose) but transfers the
    damage to the co-resident VM, whose LID changed under it. That is
    exactly why the paper's testbed ran one VM per compute node."""
    broken, queries = benchmark.pedantic(
        lambda: shared_port_run(lid_swap=True, use_cache=False),
        rounds=2,
        iterations=1,
    )
    assert broken == 1  # only the bystander's connection died


def test_shared_port_with_ref10_cache(benchmark):
    """The ref-[10] cache collapses the repair storm to ~1 query/endpoint."""
    broken, queries = benchmark.pedantic(
        lambda: shared_port_run(lid_swap=False, use_cache=True),
        rounds=2,
        iterations=1,
    )
    assert broken == PEERS
    assert queries <= PEERS

def test_vswitch_migration_breaks_nothing(benchmark):
    """The paper's architecture: zero broken, zero repair queries."""
    broken, queries = benchmark.pedantic(
        vswitch_run, rounds=2, iterations=1
    )
    assert broken == 0
    assert queries == 0
    rows = [
        ("shared-port (ref [9])", PEERS, f">= {PEERS}"),
        ("shared-port + LID swap (emulation)", "co-residents", ">= 1"),
        ("shared-port + ref [10] cache", PEERS, f"<= {PEERS}"),
        ("vSwitch (this paper)", 0, "0"),
    ]
    print("\n=== connections broken / SA queries per migration ===")
    print(render_table(["architecture", "broken", "repair queries"], rows))
