"""Benchmark E6 — section VI-D: switches updated vs migration distance.

Regenerates the Fig. 6 discussion quantitatively: the number of switches
(n') a migration updates, grouped by interconnection distance (intra-leaf,
intra-pod, inter-pod) on a 3-level fat-tree; the minimal (skyline-limited)
intra-leaf variant; and concurrent-migration admission.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.core.skyline import MigrationSkyline, admit_concurrent, plan_skyline
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager
from repro.workloads.migration_patterns import (
    INTER_POD,
    INTRA_LEAF,
    INTRA_POD,
    MigrationPlanner,
)


@pytest.fixture(scope="module")
def pod_cloud():
    built = scaled_fattree("3l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=2
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    planner = MigrationPlanner(cloud, built, seed=7)
    for _ in range(40):
        cloud.boot_vm()
    return cloud, planner


def test_minimal_n_by_distance_class(benchmark, pod_cloud):
    """The Fig. 6 gradient: the *minimum* switches a migration must update
    grows with its interconnection distance (section VI-D)."""
    from repro.core.skyline import minimal_update_set

    cloud, planner = pod_cloud

    def measure():
        observed = {INTRA_LEAF: [], INTRA_POD: [], INTER_POD: []}
        for klass in (INTRA_LEAF, INTRA_POD, INTER_POD):
            for _ in range(4):
                plan = planner.plan_one(klass)
                if plan is None:
                    continue
                vm_name, dest_name = plan
                vm = cloud.vms[vm_name]
                dest = cloud.hypervisors[dest_name]
                minimal = minimal_update_set(
                    cloud.topology, vm.lid, dest.uplink_port
                )
                observed[klass].append(len(minimal))
        return observed

    observed = benchmark.pedantic(measure, rounds=1, iterations=1)
    mean = lambda xs: sum(xs) / len(xs)
    m_leaf = mean(observed[INTRA_LEAF])
    m_pod = mean(observed[INTRA_POD])
    m_inter = mean(observed[INTER_POD])
    n = cloud.topology.num_switches
    # "In this special case regardless of the network topology, only the
    # leaf switch needs to be updated."
    assert m_leaf == 1.0
    assert m_leaf < m_pod <= m_inter <= n
    print("\n=== minimum switches to update, by migration distance ===")
    print(
        render_table(
            ["distance", "mean min switches", "samples", "of n"],
            [
                (INTRA_LEAF, f"{m_leaf:.1f}", len(observed[INTRA_LEAF]), n),
                (INTRA_POD, f"{m_pod:.1f}", len(observed[INTRA_POD]), n),
                (INTER_POD, f"{m_inter:.1f}", len(observed[INTER_POD]), n),
            ],
        )
    )


def test_deterministic_updates_more_than_minimum(benchmark, pod_cloud):
    """Section VI-D: "the deterministic method may update more switches"."""
    from repro.core.skyline import minimal_update_set, swap_update_set

    cloud, planner = pod_cloud
    plan = planner.plan_one(INTRA_POD)
    assert plan is not None
    vm_name, dest_name = plan
    vm = cloud.vms[vm_name]
    dest = cloud.hypervisors[dest_name]
    dest_vf = dest.vswitch.first_free_vf()
    deterministic = swap_update_set(cloud.topology, vm.lid, dest_vf.lid)
    minimal = benchmark(
        lambda: minimal_update_set(cloud.topology, vm.lid, dest.uplink_port)
    )
    assert len(minimal) <= len(deterministic)
    print(
        f"\nintra-pod migration: deterministic updates"
        f" {len(deterministic)} switches, minimum is {len(minimal)}"
    )


def test_minimal_intra_leaf_single_switch(benchmark, pod_cloud):
    """The special case: one switch, regardless of topology size."""
    cloud, planner = pod_cloud
    cloud.orchestrator.minimal_intra_leaf = True
    try:
        reports = []

        def one_round():
            plan = planner.plan_one(INTRA_LEAF)
            assert plan is not None
            reports.append(cloud.live_migrate(*plan))
            return reports[-1]

        benchmark.pedantic(one_round, rounds=3, iterations=1)
        for report in reports:
            assert report.switches_updated == 1
            # m' in {1, 2}: two SMPs when the swapped LIDs straddle a
            # 64-LID block boundary (section VI-B).
            assert report.reconfig.lft_smps <= 2
    finally:
        cloud.orchestrator.minimal_intra_leaf = False


def test_skyline_prediction_cost(benchmark, pod_cloud):
    """Predicting a migration's update set without executing it."""
    cloud, planner = pod_cloud
    plan = planner.plan_one(INTER_POD)
    assert plan is not None
    vm_name, dest_name = plan
    vm = cloud.vms[vm_name]
    src = cloud.hypervisors[vm.hypervisor_name]
    dest = cloud.hypervisors[dest_name]
    dest_vf = dest.vswitch.first_free_vf()

    def predict():
        return plan_skyline(
            cloud.topology,
            vm_lid=vm.lid,
            other_lid=dest_vf.lid,
            mode="swap",
            src_port=src.uplink_port,
            dest_port=dest.uplink_port,
        )

    sky = benchmark(predict)
    assert sky.n_prime >= 1


def test_concurrent_admission_scales_with_leaves(benchmark, pod_cloud):
    """Intra-leaf migrations on distinct leaves all run concurrently."""
    cloud, planner = pod_cloud
    # One synthetic intra-leaf skyline per leaf switch.
    leaves = sorted(
        {planner.leaf_of(h).index for h in cloud.hypervisors.values()}
    )
    skies = [
        MigrationSkyline(
            vm_lid=1000 + i,
            other_lid=2000 + i,
            mode="swap",
            switches={leaf},
            intra_leaf=True,
        )
        for i, leaf in enumerate(leaves)
    ]
    batches = benchmark(lambda: admit_concurrent(skies))
    assert len(batches) == 1
    assert len(batches[0]) == len(leaves)
    print(f"\nconcurrent intra-leaf migrations admitted: {len(batches[0])}")
