"""Benchmark E1 — paper Fig. 7: path computation time per routing engine.

Regenerates the figure's series: for each fat-tree size, the time the
Fat-Tree, MinHop, DFSSSP and LASH engines need to compute all paths, with
the vSwitch reconfiguration's path-computation bar pinned at zero.

The absolute seconds differ from the paper (vectorized Python vs OpenSM's
C on 2015 hardware), but the shape must hold and is asserted at session
end: ftree <= minhop << dfsssp on every size; LASH cheap on the 2-level
instances and the worst engine on the 3-level ones; growth polynomial; the
vSwitch reconfiguration always 0.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.figures import Fig7Series, render_fig7
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager

#: Collected PCt measurements: {label: Fig7Series}.
RESULTS = {}

ENGINES = ("ftree", "minhop", "dfsssp", "lash")


def _request(built):
    if not built.topology.bound_lids():
        sm = SubnetManager(built.topology, built=built)
        sm.assign_lids()
    return RoutingRequest.from_topology(built.topology, built=built)


def _record(label, built, engine, seconds, tables=None):
    series = RESULTS.setdefault(
        label,
        Fig7Series(
            label=label,
            num_nodes=built.topology.num_hcas,
            num_switches=built.topology.num_switches,
        ),
    )
    series.record(engine, seconds)
    if tables is not None:
        # Lane usage (LASH layer counts at 5832/11664 are a figure
        # artifact in their own right) rides along in the JSON payload.
        series.record_vls(engine, tables.vl_summary())


@pytest.mark.parametrize("engine", ENGINES)
def test_fig7_path_computation(benchmark, bench_fattrees, engine):
    """One bar group of Fig. 7 per engine, across all four sizes."""
    for label, built, paper_nodes in bench_fattrees:
        request = _request(built)
        eng = create_engine(engine)
        # Heavy runs (dfsssp/lash on the 3-level instances) are measured
        # once; cheap ones take the best of three and mid-cost ones the
        # best of two to suppress timer noise on loaded machines.
        t0 = time.perf_counter()
        tables = eng.compute(request)
        best = time.perf_counter() - t0
        extra_reps = 2 if best < 0.5 else (1 if best < 15.0 else 0)
        for _ in range(extra_reps):
            t0 = time.perf_counter()
            eng.compute(request)
            best = min(best, time.perf_counter() - t0)
        _record(label, built, engine, best, tables)
    # Benchmark the engine properly on the smallest instance for stable
    # pytest-benchmark statistics.
    label, built, _ = bench_fattrees[0]
    request = _request(built)
    benchmark.pedantic(
        lambda: create_engine(engine).compute(request), rounds=3, iterations=1
    )


def test_fig7_vswitch_reconfiguration_is_zero(benchmark, bench_fattrees):
    """The paper's headline bar: zero path computation for any migration."""
    from repro.core.reconfig import VSwitchReconfigurer
    from repro.fabric.presets import scaled_fattree

    built = scaled_fattree("2l-small")
    topo = built.topology
    sm = SubnetManager(topo, built=built)
    sm.assign_lids()
    h_a, h_b = topo.hcas[0], topo.hcas[-1]
    lid_a = sm.lid_manager.assign_extra_lid(h_a.port(1))
    lid_b = sm.lid_manager.assign_extra_lid(h_b.port(1))
    sm.compute_routing()
    sm.distribute()
    rec = VSwitchReconfigurer(sm)

    state = {"flip": False}

    def migrate():
        rec.swap_lids(lid_a, lid_b)
        state["flip"] = not state["flip"]
        return rec

    report = benchmark(migrate)
    # Path-computation share of a migration: identically zero.
    for label in RESULTS:
        RESULTS[label].record("vswitch-reconfig", 0.0)
    if state["flip"]:
        rec.swap_lids(lid_a, lid_b)


def test_fig7_shape_matches_paper(benchmark, bench_fattrees):
    """Assert the figure's qualitative shape on the measured series."""
    series = [RESULTS[label] for label, _, _ in bench_fattrees]
    benchmark(lambda: render_fig7(series))
    assert len(series) == 4
    two_level, three_level = series[:2], series[2:]
    for s in series:
        t = s.seconds_by_engine
        assert t["vswitch-reconfig"] == 0.0
        # Structure-exploiting ftree never loses to minhop by more than
        # measurement noise.
        assert t["ftree"] <= t["minhop"] * 1.25
        # DFSSSP is the slow topology-agnostic engine on every size (the
        # margin is thinner at paper scale, where minhop's all-pairs BFS
        # dominates its own bar, so only a 1.2x floor is asserted there).
        assert t["dfsssp"] > 1.2 * t["minhop"]
    for s in three_level:
        t = s.seconds_by_engine
        # LASH explodes on 3-level fat-trees (the paper's 3859s / 39145s):
        # worst engine overall, well clear of minhop.
        assert t["lash"] > 3 * t["minhop"]
        assert t["lash"] > t["dfsssp"]
    # Polynomial growth: the biggest instance costs more than the smallest
    # for every engine.
    smallest, largest = series[0], series[-1]
    for engine in ENGINES:
        assert (
            largest.seconds_by_engine[engine]
            > smallest.seconds_by_engine[engine]
        )
    print("\n=== Fig. 7 reproduction (path computation seconds) ===")
    print(render_fig7(series))


def test_fig7_write_results(benchmark):
    """Persist the measured series to ``BENCH_fig7.json`` at the repo root."""
    import json
    import os

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no measurements collected")
    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_fig7.json",
    )
    payload = {
        label: {
            "num_nodes": s.num_nodes,
            "num_switches": s.num_switches,
            "seconds_by_engine": s.seconds_by_engine,
            "vls_by_engine": s.vls_by_engine,
        }
        for label, s in RESULTS.items()
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nwrote {out_path}")
