"""Benchmark E8 — section VI-C: deadlock analysis of reconfiguration
transitions.

Times the channel-dependency-graph machinery and quantifies the paper's
observation: LID swapping may transiently admit dependency cycles (left to
IB timeouts), while up/down-constrained routings keep even the transition
union acyclic.
"""

from __future__ import annotations

import pytest

from repro.fabric.builders.generic import build_ring, build_torus_2d
from repro.fabric.presets import scaled_fattree
from repro.sm.deadlock import (
    is_deadlock_free,
    routing_dependencies,
    transition_is_deadlock_free,
)
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager


def routed(built, engine):
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.assign_lids()
    req = RoutingRequest.from_topology(built.topology, built=built)
    tables = create_engine(engine).compute(req)
    return req, tables


def test_dependency_extraction(benchmark):
    """Cost of building the CDG for a routed fat-tree."""
    req, tables = routed(scaled_fattree("2l-small"), "minhop")
    term_lids = [t.lid for t in req.terminals]
    deps = benchmark(
        lambda: routing_dependencies(tables.ports, req.view, term_lids)
    )
    assert len(deps) > 0


def test_updn_transition_swap_stays_acyclic(benchmark):
    """Up*/Down* + swap: old/new union remains deadlock free."""
    req, tables = routed(scaled_fattree("2l-small"), "updn")
    term_lids = [t.lid for t in req.terminals]
    a, b = term_lids[0], term_lids[-1]
    new = tables.ports.copy()
    new[:, [a, b]] = new[:, [b, a]]

    ok = benchmark(
        lambda: transition_is_deadlock_free(
            tables.ports, new, req.view, lids=term_lids
        )
    )
    assert ok


def test_minhop_swap_transition_on_torus_can_cycle(benchmark):
    """On a cyclic topology, minhop's transition union admits cycles —
    the residual risk the paper resolves with IB timeouts."""
    req, tables = routed(build_torus_2d(3, 3, 2), "minhop")
    term_lids = [t.lid for t in req.terminals]

    ok = benchmark(
        lambda: transition_is_deadlock_free(
            tables.ports, tables.ports.copy(), req.view, lids=term_lids
        )
    )
    assert not ok


def test_per_layer_check_dfsssp(benchmark):
    """DFSSSP stays deadlock free per virtual layer on a ring."""
    req, tables = routed(build_ring(8, 2), "dfsssp")
    term_lids = [t.lid for t in req.terminals]

    ok = benchmark(
        lambda: is_deadlock_free(
            tables.ports,
            req.view,
            lid_to_vl=tables.metadata["lid_to_vl"],
            lids=term_lids,
        )
    )
    assert ok
    print(f"\nDFSSSP used {tables.num_vls} virtual lanes on the ring")
