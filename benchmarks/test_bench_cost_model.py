"""Benchmark E5 — equations (1)-(5): analytic model vs event-level replay.

Sweeps the cost model across the paper's four subnet sizes and cross-checks
the analytic LFT-distribution time against the discrete-event pipeline
replay; ablates the directed-routing term ``r`` (equation (4) vs (5)) and
the SM pipelining window (section VI-B).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.core.cost_model import (
    PAPER_TABLE1_INPUTS,
    lftd_time,
    table1_row,
    traditional_rc_time,
    vswitch_rc_time,
)
from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.presets import scaled_fattree
from repro.sim.engine import replay_smp_pipeline
from repro.sm.subnet_manager import SubnetManager

#: Transport constants for the sweep (k and r of section VI-A).
K = 2.0e-6
R = 1.0e-6


def test_cost_model_sweep(benchmark):
    """RCt vs vSwitch_RCt across the paper's subnet sizes."""

    def sweep():
        rows = []
        for nodes, switches in PAPER_TABLE1_INPUTS:
            row = table1_row(nodes, switches)
            m = row.min_lft_blocks_per_switch
            rc = traditional_rc_time(0.0, switches, m, K, R)  # LFTD only
            vs_worst = vswitch_rc_time(switches, 2, K)
            vs_best = vswitch_rc_time(1, 1, K)
            rows.append((nodes, switches, m, rc, vs_worst, vs_best))
        return rows

    rows = benchmark(sweep)
    for nodes, switches, m, rc, vs_worst, vs_best in rows:
        assert vs_best < vs_worst < rc
    # The gap must widen with subnet size (the paper's scaling claim).
    ratios = [rc / vs_worst for _, _, _, rc, vs_worst, _ in rows]
    assert ratios == sorted(ratios)
    print("\n=== Reconfiguration time model (LFT distribution only) ===")
    print(
        render_table(
            ["nodes", "n", "m", "full RCt (s)", "vSwitch worst", "vSwitch best"],
            [
                (n, s, m, f"{rc:.4f}", f"{w:.6f}", f"{b:.6f}")
                for n, s, m, rc, w, b in rows
            ],
        )
    )


def test_equation5_destination_routing_ablation(benchmark):
    """Equation (4) vs (5): dropping the per-hop directed-routing term."""
    built = scaled_fattree("2l-small")
    topo = built.topology
    sm = SubnetManager(topo, built=built)
    sm.assign_lids()
    lid_a = sm.lid_manager.assign_extra_lid(topo.hcas[0].port(1))
    lid_b = sm.lid_manager.assign_extra_lid(topo.hcas[-1].port(1))
    sm.compute_routing()
    sm.distribute()
    rec_dir = VSwitchReconfigurer(sm, destination_routed=False)
    rec_dst = VSwitchReconfigurer(sm, destination_routed=True)

    def both():
        a = rec_dir.swap_lids(lid_a, lid_b)
        b = rec_dst.swap_lids(lid_a, lid_b)
        return a, b

    directed, destination = benchmark.pedantic(both, rounds=3, iterations=1)
    assert directed.lft_smps == destination.lft_smps
    assert destination.serial_time < directed.serial_time
    saved = 1 - destination.serial_time / directed.serial_time
    print(
        f"\ndirected={directed.serial_time * 1e6:.2f}us"
        f" destination-routed={destination.serial_time * 1e6:.2f}us"
        f" (r elimination saves {saved:.0%})"
    )


@pytest.mark.parametrize("window", [1, 2, 4, 8, 16])
def test_pipelining_ablation(benchmark, window):
    """Section VI-B: OpenSM pipelines LFT updates; DES replay vs analytic."""
    from repro.mad.transport import SmpTransport

    built = scaled_fattree("2l-wide")
    # Per-SMP latency samples are opt-in (they are the replay's input).
    transport = SmpTransport(built.topology, record_samples=True)
    sm = SubnetManager(built.topology, built=built, transport=transport)
    sm.assign_lids()
    sm.compute_routing()
    report = sm.distribute()
    latencies = sm.transport.stats.latencies[-report.smps_sent :]

    result = benchmark(lambda: replay_smp_pipeline(latencies, window))
    # The DES replay obeys the analytic bounds of TransportStats.
    assert result <= sum(latencies) + 1e-12
    assert result >= max(latencies) - 1e-12
    if window == 1:
        assert result == pytest.approx(sum(latencies))


def test_analytic_vs_des_agreement(benchmark):
    """Uniform-latency case: n*m*(k+r) == DES serial replay exactly."""
    n, m = 12, 3
    lat = K + R
    latencies = [lat] * (n * m)
    analytic = lftd_time(n, m, K, R)
    des = benchmark(lambda: replay_smp_pipeline(latencies, 1))
    assert des == pytest.approx(analytic)
