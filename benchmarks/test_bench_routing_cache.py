"""Benchmark — the incremental routing engine's cache and repair wins.

Measures, per fat-tree instance:

* **cold vs warm** ``compute_routing``: the first call pays the full
  O(n * E) all-pairs BFS sweep; the second call must serve everything from
  the versioned cache (zero sweeps — asserted through the cache counters);
* **repair vs full**: post-link-failure path compute with the incremental
  BFS repair against a cold from-scratch recompute of the same degraded
  fabric.

Results are written to ``BENCH_routing_cache.json`` at the repo root so
the perf trajectory is tracked across commits. Scaled instances by
default; ``REPRO_PAPER_SCALE=1`` runs the paper-sized fabrics (see
docs/PERFORMANCE.md for expected magnitudes).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.fabric.node import Switch
from repro.fabric.presets import paper_fattree
from repro.sm.subnet_manager import SubnetManager

#: {instance_label: {metric: value}} accumulated across the module.
RESULTS = {}


@pytest.fixture(scope="module")
def cache_instances(bench_fattrees):
    """Fig. 7 instances plus the 3-level *paper-profile* fabrics.

    The scaled default twins top out at 180 switches; the cache/repair
    story is only credible if the warm and repair speedups hold at the
    paper's 3-level sizes too (972 and 1620 switches), so those rows are
    always measured here even when the rest of the session runs scaled.
    """
    instances = list(bench_fattrees)
    have = {built.topology.num_switches for _, built, _ in instances}
    for nodes in (5832, 11664):
        built = paper_fattree(nodes)
        if built.topology.num_switches not in have:
            instances.append((f"paper-{nodes}", built, nodes))
    return instances


_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_routing_cache.json",
)


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _configured_sm(built, engine: str = "minhop") -> SubnetManager:
    sm = SubnetManager(built.topology, engine=engine, built=built)
    sm.initial_configure(with_discovery=False)
    return sm


def _inter_switch_link(topology):
    for link in topology.links:
        a, b = link.ends
        if isinstance(a.node, Switch) and isinstance(b.node, Switch):
            return link
    raise RuntimeError("no inter-switch link")


def test_cold_vs_warm_compute(benchmark, cache_instances):
    for label, built, _ in cache_instances:
        sm = SubnetManager(built.topology, engine="minhop", built=built)
        sm.assign_lids()
        t0 = time.perf_counter()
        sm.compute_routing()
        cold = time.perf_counter() - t0
        before = sm.routing_state.stats.snapshot()
        warm = _best_of(sm.compute_routing)
        delta = sm.routing_state.stats.delta_since(before)
        # The headline property, asserted where it is measured: a warm
        # cache performs zero BFS sweeps.
        assert delta["bfs_sweeps"] == 0
        assert delta["misses"] == 0
        entry = RESULTS.setdefault(label, {})
        entry["num_switches"] = built.topology.num_switches
        entry["cold_compute_s"] = cold
        entry["warm_compute_s"] = warm
        entry["warm_speedup"] = cold / warm if warm > 0 else float("inf")
    # Stable pytest-benchmark statistics on the smallest instance.
    _, built, _ = cache_instances[0]
    sm = _configured_sm(built)
    benchmark.pedantic(sm.compute_routing, rounds=5, iterations=1)


def test_repair_vs_full_recompute(benchmark, cache_instances):
    for label, built, _ in cache_instances:
        sm = _configured_sm(built)
        n = built.topology.num_switches
        link = _inter_switch_link(built.topology)
        before = sm.routing_state.stats.snapshot()
        t0 = time.perf_counter()
        sm.handle_link_failure(link)
        repair_total = time.perf_counter() - t0
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 1
        assert delta["sources_repaired"] < n
        repaired_sources = delta["sources_repaired"]
        # Reference: a cold SM computing the same degraded fabric.
        cold_sm = SubnetManager(built.topology, engine="minhop", built=built)
        full = _best_of(cold_sm.compute_routing, reps=1)
        entry = RESULTS.setdefault(label, {})
        entry["repair_path_compute_s"] = sm.current_tables.compute_seconds
        entry["repair_reconfig_total_s"] = repair_total
        entry["full_recompute_s"] = full
        entry["sources_repaired"] = repaired_sources
        entry["sources_total"] = n
    _, built, _ = cache_instances[0]
    sm = _configured_sm(built)

    def fail_and_restore():
        link = _inter_switch_link(built.topology)
        a, b = link.ends
        spec = (a.node, a.num, b.node, b.num)
        sm.handle_link_failure(link)
        built.topology.connect(*spec)
        built.topology.invalidate_fabric_view()
        sm.transport.invalidate_distances()

    benchmark.pedantic(fail_and_restore, rounds=3, iterations=1)


def test_write_results(benchmark):
    """Persist the measurements (runs last: files sort after the others)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no measurements collected")
    with open(_OUT_PATH, "w") as fh:
        json.dump(RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {_OUT_PATH}")
    for label, entry in RESULTS.items():
        if "warm_speedup" in entry:
            print(
                f"  {label}: cold {entry['cold_compute_s']:.4f}s,"
                f" warm {entry['warm_compute_s']:.6f}s"
                f" ({entry['warm_speedup']:.0f}x);"
                f" repaired {entry.get('sources_repaired', '?')}/"
                f"{entry.get('sources_total', '?')} sources"
            )
