"""Benchmark E9 — telemetry cost: sweep MADs and counter-update overhead.

Runs PerfManager sweeps over the paper-324 structural twin (``2l-small``)
at MAD drop rates 0 and 0.01 with retries enabled, and measures what
observability costs: MADs per sweep, the retransmission inflation loss
adds (the acceptance gate: <= 10% at drop 0.01), and the data-plane
throughput of natively maintained PMA counters.

Results are written to ``BENCH_telemetry_overhead.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import RetryPolicy
from repro.sim.dataplane import DataPlaneSimulator
from repro.sm.subnet_manager import SubnetManager
from repro.telemetry import PerfManager
from repro.workloads.traffic import all_to_all_flows

DROP_RATES = (0.0, 0.01)
NUM_SWEEPS = 6
#: Acceptance gate: sweep MADs may inflate at most 10% under drop 0.01.
MAX_SWEEP_INFLATION = 1.10

#: {label: {metric: value}} accumulated across the module.
RESULTS = {}

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_telemetry_overhead.json",
)


def build_sm():
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, engine="minhop", built=built)
    sm.initial_configure(with_discovery=False)
    sm.enable_resilience(RetryPolicy(retries=16))
    return sm


def run_sweeps_at_drop_rate(drop):
    sm = build_sm()
    if drop:
        sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=17, smp_drop_rate=drop))
        )
    perf = PerfManager(sm)
    t0 = time.perf_counter()
    reports = [perf.sweep() for _ in range(NUM_SWEEPS)]
    wall = time.perf_counter() - t0
    sm.transport.set_fault_injector(None)
    return {
        "sweeps": len(reports),
        "nodes_per_sweep": reports[0].nodes_swept,
        "sweep_smps": sum(r.smps for r in reports),
        "retransmissions": sum(r.retransmissions for r in reports),
        "misses": sum(len(r.missed) for r in reports),
        "samples": sum(r.samples for r in reports),
        "series": len(perf.store),
        "wall_s": wall,
    }


def run_counter_update_load(packets=20_000):
    """Data-plane throughput with native PMA counter maintenance on."""
    sm = build_sm()
    lids = sorted(h.lid for h in sm.topology.hcas)[:12]
    base = all_to_all_flows(lids)
    flows = (base * (packets // len(base) + 1))[:packets]
    sim = DataPlaneSimulator(sm.topology)
    sim.inject_flows(flows, spacing=1e-8)
    t0 = time.perf_counter()
    stats = sim.run()
    wall = time.perf_counter() - t0
    touched = sum(len(sw.counters) for sw in sm.topology.switches)
    return {
        "packets": packets,
        "delivered": stats.delivered,
        "wall_s": wall,
        "packets_per_s": packets / wall if wall else 0.0,
        "switch_ports_touched": touched,
    }


def test_sweep_cost_and_loss_inflation(benchmark):
    baseline = None
    for drop in DROP_RATES:
        run = run_sweeps_at_drop_rate(drop)
        assert run["misses"] == 0, "retries must recover every sweep GET"
        if drop == 0.0:
            baseline = run
            assert run["retransmissions"] == 0
            inflation = 1.0
        else:
            inflation = run["sweep_smps"] / baseline["sweep_smps"]
            # The acceptance gate from the issue: observability stays
            # cheap even on a lossy fabric.
            assert inflation <= MAX_SWEEP_INFLATION
        RESULTS[f"drop-{drop}"] = {
            "drop_rate": drop,
            **{k: v for k, v in run.items()},
            "smps_per_sweep": run["sweep_smps"] / run["sweeps"],
            "sweep_smp_inflation": inflation,
        }
    benchmark.pedantic(
        lambda: run_sweeps_at_drop_rate(0.0), rounds=1, iterations=1
    )


def test_counter_update_overhead(benchmark):
    run = run_counter_update_load()
    assert run["delivered"] > 0
    assert run["switch_ports_touched"] > 0
    RESULTS["counter-updates"] = run
    benchmark.pedantic(
        lambda: run_counter_update_load(packets=2_000),
        rounds=1,
        iterations=1,
    )


def test_write_results(benchmark):
    """Persist the measurements (runs last: files sort after the others)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("no measurements collected")
    with open(_OUT_PATH, "w") as fh:
        json.dump(RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {_OUT_PATH}")
    for drop in DROP_RATES:
        entry = RESULTS[f"drop-{drop}"]
        print(
            f"  drop-{drop}: {entry['sweep_smps']} sweep SMPs"
            f" ({entry['smps_per_sweep']:.1f}/sweep,"
            f" {entry['sweep_smp_inflation']:.3f}x inflation),"
            f" {entry['retransmissions']} retransmissions"
        )
    cu = RESULTS["counter-updates"]
    print(
        f"  counter-updates: {cu['packets']} packets in"
        f" {cu['wall_s']:.2f}s ({cu['packets_per_s']:,.0f}/s)"
    )
