"""Benchmark E8b — data-plane view of reconfiguration (section VI-C).

Runs packets with credit-based flow control against live LFTs:

* transient deadlocks under minimal routing on a cyclic fabric are broken
  by the head-of-queue timeout — "deadlocks ... will be resolved by IB
  timeouts, the mechanism which is available in IBA";
* the port-255 partially-static mitigation drops only the migrating VM's
  traffic;
* a mid-flight migration loses no packets on a fat-tree.
"""

from __future__ import annotations

import pytest

from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.builders.generic import build_ring
from repro.fabric.presets import scaled_fattree
from repro.sim.dataplane import DataPlaneSimulator
from repro.sm.subnet_manager import SubnetManager
from repro.workloads.traffic import all_to_all_flows


def routed(built, engine="minhop"):
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure(with_discovery=False)
    return sm


def test_fattree_all_to_all_throughput(benchmark):
    """Baseline: everything delivers on a routed fat-tree."""
    built = scaled_fattree("2l-small")
    routed(built)
    topo = built.topology
    lids = [h.lid for h in topo.hcas[:10]]
    flows = all_to_all_flows(lids)

    def run():
        sim = DataPlaneSimulator(topo, channel_credits=2)
        sim.inject_flows(flows, spacing=1e-7)
        return sim.run()

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.delivered == stats.injected
    assert stats.dropped_timeout == 0


@pytest.mark.parametrize("engine,expect_timeouts", [("minhop", True), ("updn", False)])
def test_ring_deadlock_vs_updn(benchmark, engine, expect_timeouts):
    """Deadlock (resolved by timeouts) vs deadlock-free routing."""
    built = build_ring(6, 1)
    routed(built, engine=engine)
    topo = built.topology
    lids = [h.lid for h in topo.hcas]
    flows = [(lids[i], lids[(i + 3) % 6]) for i in range(6)] * 4

    def run():
        sim = DataPlaneSimulator(
            topo, channel_credits=1, hop_time=1e-6, hoq_timeout=50e-6
        )
        sim.inject_flows(flows)
        return sim.run()

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.in_flight == 0
    if expect_timeouts:
        assert stats.dropped_timeout > 0
    else:
        assert stats.dropped_timeout == 0
        assert stats.delivered == stats.injected


def test_migration_under_traffic(benchmark):
    """Packets racing a reconfiguration all arrive (old or new location)."""
    built = scaled_fattree("2l-small")
    sm = routed(built)
    topo = built.topology
    h_src, h_old, h_new = topo.hcas[0], topo.hcas[-1], topo.hcas[-7]
    vm_lid = sm.lid_manager.assign_extra_lid(h_old.port(1))
    sm.compute_routing()
    sm.distribute()
    rec = VSwitchReconfigurer(sm)
    state = {"home": h_old}

    def run():
        sim = DataPlaneSimulator(topo, hop_time=1e-6)
        for i in range(16):
            sim.inject(h_src.lid, vm_lid, delay=i * 4e-6)
        target = h_new if state["home"] is h_old else h_old

        def migrate():
            rec.copy_path(target.port(1).lid, vm_lid)
            sm.lid_manager.move_lid(vm_lid, target.port(1))
            state["home"] = target

        sim.engine.schedule(30e-6, migrate, label="migration")
        return sim.run()

    stats = benchmark.pedantic(run, rounds=4, iterations=1)
    assert stats.delivered == stats.injected
    assert stats.dropped_timeout == 0
