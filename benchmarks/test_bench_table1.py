"""Benchmark E2 — paper Table I: SMPs required to update all LFTs.

Regenerates every column of Table I twice:

* **closed form** — from the cost model, for the paper's exact four
  fat-trees (independent of benchmark scale; matches the paper digit for
  digit);
* **measured** — by actually constructing a fat-tree, routing it, forcing
  a traditional full reconfiguration and counting SubnSet(LFT) packets,
  then performing a worst-case and a best-case vSwitch migration and
  counting again.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import paper_scale_enabled
from repro.analysis.tables import render_table1
from repro.core.cost_model import (
    improvement_percent,
    paper_table1,
    table1_row,
)
from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.presets import paper_fattree, scaled_fattree
from repro.sm.subnet_manager import SubnetManager

#: The rows exactly as printed in the paper.
PAPER_ROWS = {
    324: (36, 360, 6, 216, 1, 72),
    648: (54, 702, 11, 594, 1, 108),
    5832: (972, 6804, 107, 104004, 1, 1944),
    11664: (1620, 13284, 208, 336960, 1, 3240),
}


def test_table1_closed_form_matches_paper(benchmark):
    """All four rows, computed from node/switch counts alone."""
    rows = benchmark(paper_table1)
    for row in rows:
        expected = PAPER_ROWS[row.nodes]
        assert (
            row.switches,
            row.lids,
            row.min_lft_blocks_per_switch,
            row.min_smps_full_reconfig,
            row.min_smps_vswitch,
            row.max_smps_swap,
        ) == expected
    print("\n=== Table I (closed form, paper-exact) ===")
    print(render_table1(rows))
    print(
        "improvement vs full RC: 324n={:.1f}%  11664n={:.2f}%".format(
            improvement_percent(216, 72), improvement_percent(336960, 3240)
        )
    )


@pytest.mark.parametrize("nodes", [324, 648])
def test_table1_construction_counts(benchmark, nodes):
    """Constructed topologies reproduce the Nodes/Switches/LIDs columns."""
    built = benchmark.pedantic(
        lambda: paper_fattree(nodes), rounds=1, iterations=1
    )
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    row = PAPER_ROWS[nodes]
    assert built.topology.num_switches == row[0]
    assert sm.lids_consumed == row[1]


def test_table1_measured_full_reconfig(benchmark):
    """Counted SubnSet(LFT) SMPs of a forced full reconfiguration == n*m."""
    if paper_scale_enabled():
        built = paper_fattree(324)
        expected = 216
    else:
        built = scaled_fattree("2l-small")
        t = built.topology
        expected = table1_row(t.num_hcas, t.num_switches).min_smps_full_reconfig
    sm = SubnetManager(built.topology, engine="ftree", built=built)
    sm.initial_configure(with_discovery=False)

    def full_rc():
        return sm.full_reconfigure()

    report = benchmark.pedantic(full_rc, rounds=2, iterations=1)
    assert report.lft_smps == expected
    print(f"\nmeasured full-RC SMPs: {report.lft_smps} (expected {expected})")


def test_table1_measured_vswitch_best_case(benchmark):
    """The subnet-size-agnostic best case: exactly one SMP per migration."""
    built = (
        paper_fattree(324) if paper_scale_enabled() else scaled_fattree("2l-small")
    )
    topo = built.topology
    sm = SubnetManager(topo, engine="ftree", built=built)
    sm.assign_lids()
    # Two sibling hosts on one leaf; their LIDs land in one 64-block and,
    # under ftree's destination-indexed spreading, may share up-ports
    # everywhere else -> only the leaf differs.
    h_a, h_b = topo.hcas[0], topo.hcas[1]
    assert h_a.uplink_switch() is h_b.uplink_switch()
    # One lid-mod period apart (= number of spines), so both LIDs use the
    # same up ports everywhere; keep both in one 64-LID block.
    spread = len(built.roots)
    lid_a = sm.lid_manager.assign_extra_lid(h_a.port(1))
    assert (lid_a + spread) // 64 == lid_a // 64
    lid_b = sm.lid_manager.assign_extra_lid(h_b.port(1), lid=lid_a + spread)
    sm.compute_routing()
    sm.distribute()
    rec = VSwitchReconfigurer(sm)
    leaf = h_a.uplink_switch()

    def intra_leaf_migration():
        return rec.swap_lids(lid_a, lid_b, limit_switches={leaf.index})

    report = benchmark.pedantic(intra_leaf_migration, rounds=2, iterations=1)
    assert report.lft_smps == 1
    assert report.switches_updated == 1
    print(f"\nbest-case migration SMPs: {report.lft_smps} (paper: 1)")


def test_table1_measured_vswitch_worst_case_bound(benchmark):
    """Worst case stays within 2 * switches SMPs (the Max column)."""
    built = scaled_fattree("2l-small")
    topo = built.topology
    sm = SubnetManager(topo, engine="minhop", built=built)
    sm.assign_lids()
    h_a, h_b = topo.hcas[0], topo.hcas[-1]
    # Force a cross-block pair to exercise the m' = 2 worst case.
    lid_a = sm.lid_manager.assign_extra_lid(h_a.port(1), lid=60)
    lid_b = sm.lid_manager.assign_extra_lid(h_b.port(1), lid=70)
    sm.compute_routing()
    sm.distribute()
    rec = VSwitchReconfigurer(sm)

    def worst_case_swap():
        return rec.swap_lids(lid_a, lid_b)

    report = benchmark.pedantic(worst_case_swap, rounds=2, iterations=1)
    n = topo.num_switches
    assert 1 <= report.lft_smps <= 2 * n
    assert report.max_blocks_on_one_switch == 2
    print(
        f"\nworst-case migration SMPs: {report.lft_smps}"
        f" (bound 2n = {2 * n}, full RC needs"
        f" {table1_row(topo.num_hcas, topo.num_switches, extra_lids=2).min_smps_full_reconfig})"
    )
