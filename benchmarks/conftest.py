"""Benchmark fixtures and scale control.

By default the benchmarks run on scaled-down structural twins of the
paper's fat-trees so a full ``pytest benchmarks/ --benchmark-only`` stays
interactive. Set ``REPRO_PAPER_SCALE=1`` to run Fig. 7 / Table I on the
true 324/648/5832/11664-node instances: with the CSR-vectorized engines
every size completes in seconds to a few minutes (LASH on the 11664-node
fabric is the slowest bar, exactly as in the paper's 39145-second run —
only the constant factor moved).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.analysis.experiments import paper_scale_enabled
from repro.fabric.presets import (
    SCALED_TO_PAPER,
    paper_fattree,
    scaled_fattree,
)


def fig7_instances():
    """(label, built, paper_nodes) triples for the Fig. 7 sweep."""
    if paper_scale_enabled():
        return [
            (f"paper-{n}", paper_fattree(n), n) for n in (324, 648, 5832, 11664)
        ]
    return [
        (profile, scaled_fattree(profile), paper_nodes)
        for profile, paper_nodes in SCALED_TO_PAPER.items()
    ]


@pytest.fixture(scope="session")
def bench_fattrees():
    """Cached topology instances for the whole benchmark session."""
    return fig7_instances()


@pytest.fixture(scope="session")
def small_instance():
    """One small instance for per-operation microbenchmarks."""
    return scaled_fattree("2l-small")
