#!/usr/bin/env python
"""Fig. 7 reproduction: path computation time across routing engines.

Times the Fat-Tree, MinHop, DFSSSP and LASH engines on the four fat-tree
shapes of the paper (scaled twins by default; set REPRO_PAPER_SCALE=1 for
the true 324/648/5832/11664-node instances — the 3-level DFSSSP/LASH runs
then take hours, just as the originals took 625 s and 39145 s) and prints
the measured series next to the paper's published values.

Run:  python examples/routing_comparison.py
"""

import os

from repro.analysis.experiments import FIG7_ENGINES, run_fig7
from repro.analysis.figures import PAPER_FIG7_SECONDS, render_fig7
from repro.analysis.tables import render_table
from repro.fabric.presets import SCALED_TO_PAPER


def main() -> None:
    paper_scale = os.environ.get("REPRO_PAPER_SCALE", "") == "1"
    if paper_scale:
        engines = FIG7_ENGINES
        print("running at PAPER SCALE (this takes a long time)")
    else:
        engines = FIG7_ENGINES
        print(
            "running on scaled-down structural twins"
            " (REPRO_PAPER_SCALE=1 for the full instances)"
        )

    series = run_fig7(engines=engines)
    print("\n=== measured path computation time (PCt) ===")
    print(render_fig7(series))

    from repro.analysis.plots import render_fig7_chart

    print("\n=== as a (log-scale) chart ===")
    print(render_fig7_chart(series))

    print("\n=== the paper's Fig. 7 values (seconds) ===")
    sizes = (324, 648, 5832, 11664)
    rows = [
        [engine] + [PAPER_FIG7_SECONDS[engine][n] for n in sizes]
        for engine in list(FIG7_ENGINES) + ["vswitch-reconfig"]
    ]
    print(render_table(["engine"] + [f"{n} nodes" for n in sizes], rows))

    print("\nshape checks:")
    for s in series:
        t = s.seconds_by_engine
        checks = {
            "ftree fastest structured": t["ftree"] <= t["minhop"] * 1.25,
            "dfsssp >> minhop": t["dfsssp"] > 2 * t["minhop"],
            "vswitch reconfig zero": t["vswitch-reconfig"] == 0.0,
        }
        print(f"  {s.label}: " + ", ".join(f"{k}={v}" for k, v in checks.items()))
    if not paper_scale:
        scale_map = ", ".join(
            f"{prof}~{nodes}n" for prof, nodes in SCALED_TO_PAPER.items()
        )
        print(f"\nscaled twin -> paper instance mapping: {scale_map}")


if __name__ == "__main__":
    main()
