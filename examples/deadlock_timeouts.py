#!/usr/bin/env python
"""Section VI-C, executed: reconfiguration deadlocks and their mitigations.

The paper keeps deadlock handling pragmatic: swapping LIDs may transiently
create channel-dependency cycles, "and they will be resolved by IB
timeouts"; alternatively the LID can be invalidated (port 255) so traffic
is dropped instead of wedged. This example makes all of it observable with
the credit-based data-plane simulator:

1. minimal routing on a ring deadlocks under crossing traffic — the
   head-of-queue timeout drops the wedged packets and the rest deliver;
2. Up*/Down* on the same ring: zero timeouts by construction;
3. DFSSSP's virtual-lane split: same cyclic fabric, zero timeouts, because
   each lane has its own credits;
4. the port-255 partially-static mitigation drops exactly the migrating
   VM's traffic and nothing else.

Run:  python examples/deadlock_timeouts.py
"""

from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.builders.generic import build_ring
from repro.fabric.presets import scaled_fattree
from repro.sim.dataplane import DataPlaneSimulator
from repro.sm.subnet_manager import SubnetManager


def ring_experiment(engine: str, *, lid_to_vl=None, label: str = "") -> None:
    built = build_ring(6, 1)
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure(with_discovery=False)
    vls = lid_to_vl
    if engine == "dfsssp" and vls is None:
        vls = sm.current_tables.metadata["lid_to_vl"]
    topo = built.topology
    lids = [h.lid for h in topo.hcas]
    flows = [(lids[i], lids[(i + 3) % 6]) for i in range(6)] * 4
    sim = DataPlaneSimulator(
        topo,
        channel_credits=1,
        hop_time=1e-6,
        hoq_timeout=50e-6,
        lid_to_vl=vls,
    )
    sim.inject_flows(flows)
    stats = sim.run()
    print(
        f"{label or engine:28s} delivered={stats.delivered:3d}/{stats.injected}"
        f"  timeout-drops={stats.dropped_timeout:3d}"
        f"  (deadlock {'occurred, broken by timeouts' if stats.dropped_timeout else 'never formed'})"
    )


def port255_experiment() -> None:
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, built=built, engine="minhop")
    sm.initial_configure(with_discovery=False)
    topo = built.topology
    victim = topo.hcas[-1].lid
    VSwitchReconfigurer(sm).invalidate_lid(victim)
    sim = DataPlaneSimulator(topo)
    sim.inject(topo.hcas[0].lid, victim)
    for other in topo.hcas[1:6]:
        sim.inject(topo.hcas[0].lid, other.lid)
    stats = sim.run()
    print(
        f"{'port-255 invalidation':28s} delivered={stats.delivered:3d}/{stats.injected}"
        f"  port255-drops={stats.dropped_port255:3d}"
        "  (only the migrating VM's traffic dropped)"
    )


def main() -> None:
    print("crossing traffic on a 6-switch ring, 1 credit per channel:\n")
    ring_experiment("minhop", label="minhop (cyclic CDG)")
    ring_experiment("updn", label="up*/down* (acyclic CDG)")
    ring_experiment("dfsssp", label="dfsssp (VL-separated)")
    print()
    port255_experiment()


if __name__ == "__main__":
    main()
