#!/usr/bin/env python
"""Operating the subnet: SM redundancy, traps, failures, safe reconfiguration.

A tour of the management-plane machinery around the paper's contribution:

1. SM election and handover (the ref-[10] prototype restarted the SM; a
   state-sharing standby takes over for free);
2. a cable failure: traps from both ends, recompute + diff distribution —
   the *legitimate* expensive reconfiguration, vs migrations at zero PCt;
3. a spine switch failure: removed, rerouted, audited;
4. the §VI-C partially-static *safe swap*: invalidate-then-swap, priced
   against the plain swap.

Run:  python examples/fabric_management.py
"""

from repro.analysis.verification import verify_subnet
from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sm.handover import SmRedundancyManager
from repro.sm.subnet_manager import SubnetManager
from repro.sm.traps import FabricEventManager, TrapType


def main() -> None:
    built = scaled_fattree("2l-wide")
    sm = SubnetManager(
        built.topology, built=built, engine="ftree", fallback_engine="minhop"
    )
    report = sm.initial_configure(with_discovery=True)
    print(
        f"subnet up: {sm.lids_consumed} LIDs, engine={sm.current_tables.algorithm},"
        f" {report.lft_smps} LFT SMPs, PCt={report.path_compute_seconds * 1e3:.1f}ms"
    )

    # 1. SM redundancy.
    redundancy = SmRedundancyManager(sm)
    hcas = built.topology.hcas
    redundancy.register(hcas[0].name, guid=0x10, priority=3)
    redundancy.register(hcas[1].name, guid=0x20, priority=3)
    master = redundancy.elect()
    print(f"\nSM master: {master.node_name} (priority {master.priority})")
    redundancy.kill_master()
    takeover = redundancy.handover(resweep=False)
    print(
        f"master died; {redundancy.master.node_name} took over with"
        f" {takeover.lft_smps} LFT SMPs and PCt={takeover.path_compute_seconds}s"
        " (state-sharing handover is free)"
    )

    # 2. A cable fails.
    events = FabricEventManager(sm)
    link = next(
        l
        for l in built.topology.links
        if isinstance(l.a.node, Switch) and isinstance(l.b.node, Switch)
    )
    reaction = events.link_down(link)
    downs = events.traps_of(TrapType.LINK_STATE_DOWN)
    print(
        f"\ncable {downs[0].reporter}<->{downs[1].reporter} died:"
        f" {len(downs)} traps, reroute cost"
        f" PCt={reaction.path_compute_seconds * 1e3:.1f}ms +"
        f" {reaction.lft_smps} SMPs"
    )

    # 3. A spine dies entirely.
    spine = next(sw for sw in built.topology.switches if not sw.is_leaf)
    reaction = sm.handle_switch_failure(spine)
    audit = verify_subnet(sm)
    print(
        f"spine {spine.name} failed: removed, rerouted"
        f" ({reaction.lft_smps} SMPs); subnet audit:"
        f" {'OK' if audit.ok else audit.failures[:2]}"
    )

    # 4. Safe (partially-static) swap vs plain swap.
    topo = built.topology
    lid_a = sm.lid_manager.assign_extra_lid(topo.hcas[2].port(1))
    lid_b = sm.lid_manager.assign_extra_lid(topo.hcas[-2].port(1))
    sm.compute_routing()
    sm.distribute()
    rec = VSwitchReconfigurer(sm)
    plain = rec.swap_lids(lid_a, lid_b)
    safe = rec.safe_swap_lids(lid_a, lid_b)  # swap back, safely
    print(
        f"\nplain swap: {plain.lft_smps} SMPs on {plain.switches_updated}"
        f" switches; safe swap: {safe.lft_smps} SMPs"
        f" (+{safe.lft_smps - plain.lft_smps} for the port-255 invalidation"
        " phase, as section VI-C prices it)"
    )


if __name__ == "__main__":
    main()
