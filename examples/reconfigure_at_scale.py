#!/usr/bin/env python
"""Table I reproduction and the reconfiguration cost model at scale.

Regenerates every column of the paper's Table I (exactly), derives the
SMP-count improvements the paper quotes (66.7% at 324 nodes, 99.04% at
11664), and sweeps equations (1)-(5) to show where the vSwitch
reconfiguration wins and by how much.

Run:  python examples/reconfigure_at_scale.py
"""

from repro.analysis.tables import render_table, render_table1
from repro.core.cost_model import (
    PAPER_TABLE1_INPUTS,
    improvement_percent,
    paper_table1,
    table1_row,
    traditional_rc_time,
    vswitch_rc_time,
    worst_case_blocks_example,
)
from repro.analysis.figures import PAPER_FIG7_SECONDS


def main() -> None:
    rows = paper_table1()
    print("=== Table I (regenerated) ===")
    print(render_table1(rows))

    print("\n=== SMP improvement of the vSwitch reconfiguration ===")
    body = []
    for row in rows:
        worst = improvement_percent(row.min_smps_full_reconfig, row.max_smps_swap)
        best = improvement_percent(row.min_smps_full_reconfig, row.min_smps_vswitch)
        body.append(
            (
                row.nodes,
                f"{row.max_smps_swap} vs {row.min_smps_full_reconfig}",
                f"{worst:.2f}%",
                f"{best:.4f}%",
            )
        )
    print(
        render_table(
            ["nodes", "worst-case SMPs vs full RC", "worst-case gain", "best-case gain"],
            body,
        )
    )

    print("\n=== end-to-end reconfiguration time, equations (1)-(5) ===")
    k, r = 2.0e-6, 1.0e-6  # per-SMP traversal and directed-routing overhead
    body = []
    for nodes, switches in PAPER_TABLE1_INPUTS:
        row = table1_row(nodes, switches)
        pct = PAPER_FIG7_SECONDS["ftree"][nodes]  # the paper's measured PCt
        full = traditional_rc_time(
            pct, switches, row.min_lft_blocks_per_switch, k, r
        )
        vs_directed = vswitch_rc_time(
            switches, 2, k, r, destination_routed=False
        )
        vs_dest = vswitch_rc_time(switches, 2, k)
        vs_best = vswitch_rc_time(1, 1, k)
        body.append(
            (
                nodes,
                f"{full:.2f}s",
                f"{vs_directed * 1e3:.3f}ms",
                f"{vs_dest * 1e3:.3f}ms",
                f"{vs_best * 1e6:.1f}us",
                f"{full / vs_dest:,.0f}x",
            )
        )
    print(
        render_table(
            [
                "nodes",
                "full RCt (eq.3)",
                "vSwitch worst (eq.4)",
                "vSwitch worst (eq.5)",
                "vSwitch best",
                "speedup (eq.5)",
            ],
            body,
        )
    )

    print(
        f"\ncorner case (section VII-C): a node holding the topmost unicast"
        f" LID forces {worst_case_blocks_example()} LFT blocks (= SMPs) on"
        f" a single switch during a full distribution."
    )


if __name__ == "__main__":
    main()
