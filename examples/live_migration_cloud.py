#!/usr/bin/env python
"""The section VII-B emulation, end to end — and what it could not show.

The paper's testbed ran OpenStack on real Shared Port hardware, which forced
one VM per compute node (all co-resident VMs share the hypervisor's LID, so
migrating one with its LID breaks the rest). This example first reproduces
that constraint on the Shared Port model, then runs the same 4-step
OpenStack/OpenSM workflow on the proposed vSwitch architecture where the
constraint disappears:

1. detach the SR-IOV VF, start the live migration;
2. the cloud manager signals the SM;
3. the SM reconfigures: VF address SMPs + the LFT swap;
4. re-attach a VF holding the VM's vGUID at the destination.

Run:  python examples/live_migration_cloud.py
"""

from repro import CloudManager, SharedPortHCA, scaled_fattree
from repro.fabric.addressing import GuidAllocator


def shared_port_constraint() -> None:
    """Why the emulation was limited to one VM per node (section VII-B)."""
    print("=== Shared Port: the emulation constraint ===")
    built = scaled_fattree("2l-small")
    hca = built.topology.hcas[0]
    shared = SharedPortHCA(hca, GuidAllocator(), num_vfs=4)
    shared.lid = 99
    vf1 = shared.attach_vm("vm-a")
    shared.attach_vm("vm-b")
    shared.attach_vm("vm-c")
    victims = shared.vms_sharing_lid_with(vf1)
    print(f"hypervisor LID {shared.lid} is shared by: {shared.active_vms()}")
    print(
        f"migrating vm-a with that LID would break connectivity for"
        f" {victims} -> at most one VM per node on real hardware\n"
    )


def vswitch_migration(scheme: str) -> None:
    """The 4-step flow against the vSwitch architecture."""
    print(f"=== vSwitch migration, {scheme} LID scheme ===")
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=scheme, num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()

    # Multiple VMs per hypervisor: no Shared Port constraint.
    vms = [cloud.boot_vm(on="l0h0") for _ in range(3)]
    vm = vms[0]
    print(
        f"{len(vms)} co-resident VMs on l0h0 with distinct LIDs:"
        f" {[v.lid for v in vms]}"
    )

    for dest, label in [("l0h1", "intra-leaf"), ("l4h2", "inter-leaf")]:
        report = cloud.live_migrate(vm.name, dest)
        print(
            f"{label:11s} -> {dest}: mode={report.mode},"
            f" n'={report.switches_updated},"
            f" LFT SMPs={report.reconfig.lft_smps},"
            f" addr SMPs={report.address_update_smps},"
            f" reconfig={report.reconfig.total_seconds_serial * 1e6:.1f} us,"
            f" downtime~{report.downtime_seconds:.2f} s (VF detach/attach bound)"
        )
    others = [v for v in vms[1:]]
    print(
        f"co-resident VMs unaffected: "
        f"{[ (v.name, v.lid, v.hypervisor_name) for v in others ]}"
    )

    # Peers keep communicating without new SA queries (ref [10] caching).
    from repro.virt.sa_cache import SaPathCache

    cache = SaPathCache(cloud.sa)
    cache.resolve(vm.gid)  # one query before any further migration
    cloud.live_migrate(vm.name, "l2h3")
    assert cache.entry_still_valid(vm.gid)
    print(
        "SA path-record cache entry still valid after migration"
        f" (LID {vm.lid} travelled with the VM); queries saved so far:"
        f" {cache.stats.queries_saved}\n"
    )


def minimal_reconfiguration() -> None:
    """Section VI-D: the leaf-only update for intra-leaf migrations."""
    print("=== minimal (skyline-limited) intra-leaf reconfiguration ===")
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    vm = cloud.boot_vm(on="l3h0")

    cloud.orchestrator.minimal_intra_leaf = False
    deterministic = cloud.live_migrate(vm.name, "l3h1")
    cloud.orchestrator.minimal_intra_leaf = True
    minimal = cloud.live_migrate(vm.name, "l3h0")
    print(
        f"deterministic intra-leaf migration: n'={deterministic.switches_updated},"
        f" SMPs={deterministic.reconfig.lft_smps}"
    )
    print(
        f"minimal intra-leaf migration:       n'={minimal.switches_updated},"
        f" SMPs={minimal.reconfig.lft_smps}"
        " (one switch, regardless of topology)"
    )


def main() -> None:
    shared_port_constraint()
    vswitch_migration("prepopulated")
    vswitch_migration("dynamic")
    minimal_reconfiguration()


if __name__ == "__main__":
    main()
