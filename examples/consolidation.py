#!/usr/bin/env python
"""Data-center optimization: defragmenting a cloud with live migrations.

The paper motivates the vSwitch architecture with exactly this workflow
("transparent live migrations for data center optimization", sections I and
V): after random churn the cloud is fragmented across many half-empty
hypervisors; packing VMs onto fewer nodes frees whole machines. The example
plans the consolidation, batches non-interfering migrations using their
skylines (section VI-D), executes them, and accounts the total SMP cost —
which a traditional reconfiguration approach would multiply by orders of
magnitude.

Run:  python examples/consolidation.py
"""

from repro import CloudManager, scaled_fattree
from repro.core.skyline import admit_concurrent, plan_skyline
from repro.workloads.churn import ChurnWorkload


def plan_consolidation(cloud):
    """Greedy pack: move VMs from the emptiest used nodes to the fullest
    nodes that still have room."""
    moves = []
    reserved = {}
    donors = sorted(
        (h for h in cloud.hypervisors.values() if 0 < h.vm_count),
        key=lambda h: h.vm_count,
    )
    for donor in donors:
        for vm in list(donor.running_vms()):
            receivers = sorted(
                (
                    h
                    for h in cloud.hypervisors.values()
                    if h is not donor
                    and h.vm_count > donor.vm_count
                    and h.free_vf_count - reserved.get(h.name, 0) > 0
                ),
                key=lambda h: -h.vm_count,
            )
            if not receivers:
                continue
            dest = receivers[0]
            moves.append((vm.name, dest.name))
            reserved[dest.name] = reserved.get(dest.name, 0) + 1
    return moves


def main() -> None:
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology,
        built=built,
        lid_scheme="prepopulated",
        num_vfs=4,
        placement="spread",  # scatter VMs so churn leaves fragmentation
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()

    # Fragment the cloud with random churn.
    ChurnWorkload(cloud, seed=42, target_utilization=0.35).run(220)
    used = sum(1 for h in cloud.hypervisors.values() if h.vm_count)
    print(
        f"after churn: {cloud.running_vm_count} VMs spread over {used}"
        f" hypervisors (fragmentation {cloud.fragmentation():.0%})"
    )

    moves = plan_consolidation(cloud)
    print(f"consolidation plan: {len(moves)} migrations")

    # Group non-interfering migrations into concurrent batches by skyline.
    skylines = []
    for vm_name, dest_name in moves:
        vm = cloud.vms[vm_name]
        src = cloud.hypervisors[vm.hypervisor_name]
        dest = cloud.hypervisors[dest_name]
        dest_vf = dest.vswitch.first_free_vf()
        sky = plan_skyline(
            cloud.topology,
            vm_lid=vm.lid,
            other_lid=dest_vf.lid,
            mode="swap",
            src_port=src.uplink_port,
            dest_port=dest.uplink_port,
        )
        skylines.append((sky, vm_name, dest_name))
    batches = admit_concurrent([s for s, *_ in skylines])
    print(
        f"admitted into {len(batches)} sequential rounds"
        f" (round sizes: {[len(b) for b in batches]})"
    )

    # Execute; every migration is a handful of SMPs and zero path compute.
    total_smps = 0
    executed = 0
    by_key = {(s.vm_lid, s.other_lid): (vm, dest) for s, vm, dest in skylines}
    for batch in batches:
        for sky in batch:
            vm_name, dest_name = by_key[(sky.vm_lid, sky.other_lid)]
            vm = cloud.vms[vm_name]
            if vm.hypervisor_name == dest_name:
                continue
            report = cloud.live_migrate(vm_name, dest_name)
            total_smps += report.total_smps
            executed += 1

    used_after = sum(1 for h in cloud.hypervisors.values() if h.vm_count)
    print(
        f"\nafter consolidation: {cloud.running_vm_count} VMs on"
        f" {used_after} hypervisors ({used - used_after} nodes freed)"
    )
    print(
        f"network cost: {total_smps} SMPs across {executed} migrations,"
        f" 0 seconds of path computation"
    )
    full = cloud.sm.full_reconfigure()
    print(
        f"the traditional approach runs one full reconfiguration per"
        f" migration: {executed} x {full.lft_smps} ="
        f" {executed * full.lft_smps} SMPs plus {executed} path"
        f" computations of {full.path_compute_seconds * 1e3:.0f} ms each"
        f" (and minutes each at the paper's 11664-node scale)"
    )


if __name__ == "__main__":
    main()
