#!/usr/bin/env python
"""Quickstart: a vSwitch-enabled IB cloud in ~40 lines.

Builds a small fat-tree subnet, brings it up with the prepopulated-LIDs
vSwitch scheme, boots a few VMs and live-migrates one — showing the paper's
central numbers: zero path computation and a handful of SMPs per migration,
with the VM keeping its LID, vGUID and GID.

Run:  python examples/quickstart.py
"""

from repro import CloudManager, scaled_fattree


def main() -> None:
    # A 2-level fat-tree: 36 hosts behind 6 leaves, 6 spines.
    built = scaled_fattree("2l-small")
    print(f"topology: {built.describe()}")

    cloud = CloudManager(
        built.topology,
        built=built,
        lid_scheme="prepopulated",  # section V-A (try "dynamic" for V-B)
        num_vfs=4,
    )
    cloud.adopt_all_hcas()
    report = cloud.bring_up_subnet()
    print(
        f"bring-up: {cloud.sm.lids_consumed} LIDs,"
        f" PCt={report.path_compute_seconds * 1e3:.1f} ms,"
        f" {report.lft_smps} LFT SMPs distributed"
    )

    vms = [cloud.boot_vm() for _ in range(5)]
    vm = vms[0]
    print(
        f"\nbooted {len(vms)} VMs; {vm.name} runs on {vm.hypervisor_name}"
        f" with LID {vm.lid}, GID {vm.gid}"
    )

    # Live-migrate the VM across the fabric.
    dest = "l5h5"
    mig = cloud.live_migrate(vm.name, dest)
    print(f"\nlive migration {mig.source} -> {mig.destination}:")
    print(f"  mode                : LID {mig.mode} (Algorithm 1)")
    print(f"  path computation    : {mig.reconfig.path_compute_seconds} s (always 0)")
    print(f"  switches updated n' : {mig.switches_updated} of {cloud.topology.num_switches}")
    print(f"  LFT update SMPs     : {mig.reconfig.lft_smps}")
    print(f"  address-update SMPs : {mig.address_update_smps}")
    print(f"  VM kept its LID     : {vm.lid == mig.vm_lid}")

    # Contrast with what a traditional full reconfiguration would cost.
    full = cloud.sm.full_reconfigure()
    print(
        f"\ntraditional full reconfiguration of the same subnet:"
        f" {full.lft_smps} SMPs + {full.path_compute_seconds * 1e3:.1f} ms"
        f" of path computation"
    )
    reduction = 100 * (1 - mig.reconfig.lft_smps / full.lft_smps)
    print(f"SMP reduction per migration: {reduction:.1f}%")

    # The gap widens with subnet size — at the paper's largest instance:
    from repro import table1_row

    big = table1_row(11664, 1620)
    print(
        f"at 11664 nodes: worst-case {big.max_smps_swap} vs"
        f" {big.min_smps_full_reconfig} SMPs (99.04% reduction),"
        f" best case a single SMP"
    )


if __name__ == "__main__":
    main()
